"""Failure-atomic transactions with undo logging.

The protocol mirrors libpmemobj's undo-log transactions:

``begin``
    Outermost begin starts with an empty log (the previous commit left
    every entry invalid).  Nested transactions flatten into the outer one
    (paper Section 7.1: updates are only guaranteed durable when the
    *outermost* transaction ends).
``add(addr, size)`` (``TX_ADD``)
    Snapshot the object's current bytes into the next log entry:
    write entry header + data (valid flag still 0) -> flush -> fence ->
    set valid -> flush -> fence.  Only then may the caller modify the
    object: the fence order guarantees a crash never sees a valid entry
    with garbage contents.
``commit`` (outermost ``TX_END``)
    Flush every snapshotted range (the modified objects), fence, then
    invalidate all log entries and fence again.  After the first fence
    the new data is durable; after the second the log is empty, so
    recovery is a no-op.
``abort``
    Roll the objects back from the log (reverse order), persist the
    rollback, invalidate the log.
``recover_image``
    Offline recovery of a crash image: apply every valid log entry
    (reverse order) and invalidate the log — what pool open would do
    after a crash.

Log entry format (all fields u64, data padded to 8 bytes)::

    +-------+-------+-------+----------------+
    | addr  | size  | valid | data ...       |
    +-------+-------+-------+----------------+

Fault injection: the constructor accepts fault names that elide specific
persistence steps, reproducing the paper's synthetic transaction bugs:

========================  ====================================================
fault                     effect
========================  ====================================================
``log-no-flush``          log entry data is not flushed before the valid flag
``log-no-fence``          no fence between entry data and valid flag
``valid-no-fence``        no fence after setting the valid flag
``commit-no-flush``       modified objects are not flushed at commit
``commit-no-fence``       no fence after the commit flush
========================  ====================================================
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, List, Tuple

from repro.core.interval_map import IntervalMap
from repro.pmem.memory import PMImage

if TYPE_CHECKING:  # pragma: no cover
    from repro.pmdk.pool import PMPool, PoolLayout

ENTRY_HEADER = 24  # addr + size + valid

KNOWN_FAULTS = frozenset(
    {
        "log-no-flush",
        "log-no-fence",
        "valid-no-fence",
        "commit-no-flush",
        "commit-no-fence",
    }
)


class TransactionError(Exception):
    """Transaction API misuse (add outside a transaction, log overflow)."""


class TransactionAborted(Exception):
    """Raised through the context manager after a rollback completes."""


class TransactionManager:
    """Undo-log transaction machinery for one pool."""

    def __init__(self, pool: "PMPool", faults: Tuple[str, ...] = ()) -> None:
        unknown = set(faults) - KNOWN_FAULTS
        if unknown:
            raise ValueError(f"unknown transaction faults: {sorted(unknown)}")
        self.pool = pool
        self.faults = frozenset(faults)
        self.depth = 0
        #: committed log tail offset within the log region (volatile)
        self._tail = 0
        #: (entry_addr, target_addr, data_size) for each live entry
        self._entries: List[Tuple[int, int, int]] = []
        #: ranges snapshotted by add(), flushed at commit
        self._ranges: List[Tuple[int, int]] = []
        #: objects allocated inside this transaction (freed on abort)
        self._allocs: List[int] = []
        #: volatile coverage of snapshotted/registered ranges, used by
        #: :meth:`add_once` (the analogue of libpmemobj's ranges tree)
        self._coverage: IntervalMap[bool] = IntervalMap()

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self.depth > 0

    @contextmanager
    def transaction(self) -> Iterator["TransactionManager"]:
        """``with pool.tx.transaction():`` — TX_BEGIN/TX_END with rollback
        on exception."""
        self.begin()
        try:
            yield self
        except BaseException:
            self.abort()
            raise
        self.commit()

    # ------------------------------------------------------------------
    def begin(self) -> None:
        self.depth += 1
        self.pool.runtime.tx_begin()
        if self.depth == 1:
            self._tail = 0
            self._entries.clear()
            self._ranges.clear()
            self._allocs.clear()
            self._coverage.clear()

    def add(self, addr: int, size: int) -> None:
        """Snapshot ``[addr, addr+size)`` into the undo log (TX_ADD)."""
        if not self.active:
            raise TransactionError("tx add outside a transaction")
        runtime = self.pool.runtime
        layout = self.pool.layout
        padded = (size + 7) & ~7
        entry_addr = layout.log_base + self._tail
        if self._tail + ENTRY_HEADER + padded > layout.log_capacity:
            raise TransactionError("undo log overflow")
        old_data = runtime.load(addr, size)
        # 1. Entry header (valid still 0 from the previous invalidation)
        #    and snapshot payload.
        runtime.store_u64(entry_addr, addr)
        runtime.store_u64(entry_addr + 8, size)
        runtime.store(entry_addr + ENTRY_HEADER, old_data.ljust(padded, b"\0"))
        if "log-no-flush" not in self.faults:
            runtime.clwb(entry_addr, ENTRY_HEADER + padded)
        if "log-no-fence" not in self.faults:
            runtime.sfence()
        # 2. Publish the entry.
        runtime.store_u64(entry_addr + 16, 1)
        runtime.clwb(entry_addr + 16, 8)
        if "valid-no-fence" not in self.faults:
            runtime.sfence()
        self._tail += ENTRY_HEADER + padded
        self._entries.append((entry_addr, addr, size))
        self._ranges.append((addr, size))
        self._coverage.assign(addr, addr + size, True)
        runtime.tx_add(addr, size)

    def add_once(self, addr: int, size: int) -> None:
        """Snapshot a range unless this transaction already covers it.

        Careful PMDK code guards repeated ``TX_ADD`` of the same object
        across helper functions; this is that guard.  The raw
        :meth:`add` always records the call (and so trips PMTest's
        duplicate-log checker when redundant) — which is exactly how the
        paper's Bug 3 manifests.
        """
        if not self.active:
            raise TransactionError("tx add outside a transaction")
        for lo, hi in self._coverage.gaps(addr, addr + size):
            self.add(lo, hi - lo)

    def register_alloc(self, addr: int, size: int) -> None:
        """Register a fresh transactional allocation.

        A new object needs no undo snapshot — rolling it back means
        freeing it — but its contents must be flushed at commit, and the
        missing-log checker must treat the range as covered.  Emitting a
        ``TX_ADD`` record (with no log payload) expresses exactly that to
        the checking engine, mirroring how libpmemobj registers
        ``tx_alloc`` in its transaction log.
        """
        if not self.active:
            raise TransactionError("register_alloc outside a transaction")
        self._ranges.append((addr, size))
        self._allocs.append(addr)
        self._coverage.assign(addr, addr + size, True)
        self.pool.runtime.tx_add(addr, size)

    def add_struct(self, struct) -> None:
        """Snapshot a whole :class:`~repro.pmdk.objects.PStruct`."""
        self.add(*struct.range())

    def add_field(self, struct, name: str) -> None:
        """Snapshot one field of a persistent struct."""
        self.add(*struct.field_range(name))

    def add_struct_once(self, struct) -> None:
        """Snapshot a struct unless already covered this transaction."""
        self.add_once(*struct.range())

    def add_field_once(self, struct, name: str) -> None:
        """Snapshot a field unless already covered this transaction."""
        self.add_once(*struct.field_range(name))

    def commit(self) -> None:
        """TX_END: durable at the outermost commit only."""
        if not self.active:
            raise TransactionError("commit without begin")
        self.depth -= 1
        if self.depth == 0:
            self._flush_modifications()
            self._invalidate_log()
        self.pool.runtime.tx_end()

    def abort(self) -> None:
        """Roll back every snapshotted object and terminate the TX."""
        if not self.active:
            raise TransactionError("abort without begin")
        runtime = self.pool.runtime
        for entry_addr, addr, size in reversed(self._entries):
            old_data = runtime.load(entry_addr + ENTRY_HEADER, size)
            runtime.store(addr, old_data)
            runtime.clwb(addr, size)
        runtime.sfence()
        self._invalidate_log()
        for addr in self._allocs:
            self.pool.free(addr)
        self._allocs.clear()
        # Balance the recorded TX_BEGINs for the engine's depth tracking.
        while self.depth:
            self.depth -= 1
            runtime.tx_end()

    # ------------------------------------------------------------------
    def _flush_modifications(self) -> None:
        runtime = self.pool.runtime
        if "commit-no-flush" not in self.faults:
            # Coalesce the snapshotted ranges (an object added twice, or
            # adjacent fields, would otherwise be flushed twice).
            coverage: IntervalMap[bool] = IntervalMap()
            for addr, size in self._ranges:
                coverage.assign(addr, addr + size, True)
            coverage.coalesce()
            for lo, hi, _ in coverage:
                runtime.clwb(lo, hi - lo)
        if "commit-no-fence" not in self.faults:
            runtime.sfence()

    def _invalidate_log(self) -> None:
        runtime = self.pool.runtime
        for entry_addr, _, _ in self._entries:
            runtime.store_u64(entry_addr + 16, 0)
            runtime.clwb(entry_addr + 16, 8)
        # An injected commit-no-fence models a commit path that returns
        # before any of its fences, so it elides this one as well.
        if self._entries and "commit-no-fence" not in self.faults:
            runtime.sfence()
        self._entries.clear()
        self._ranges.clear()
        self._tail = 0


def iter_log_entries(
    image: PMImage, layout: "PoolLayout"
) -> Iterator[Tuple[int, int, int, bytes]]:
    """Walk valid undo-log entries in a crash image.

    Yields ``(entry_addr, target_addr, size, old_data)`` until the first
    invalid entry (entries are written and published in order, so valid
    entries always form a prefix of the log).
    """
    cursor = layout.log_base
    end = layout.log_base + layout.log_capacity
    while cursor + ENTRY_HEADER <= end:
        addr = image.read_u64(cursor)
        size = image.read_u64(cursor + 8)
        valid = image.read_u64(cursor + 16)
        if valid != 1 or size == 0:
            return
        padded = (size + 7) & ~7
        if cursor + ENTRY_HEADER + padded > end:
            return
        yield cursor, addr, size, image.read(cursor + ENTRY_HEADER, size)
        cursor += ENTRY_HEADER + padded


def recover_image(image: PMImage, layout: "PoolLayout") -> int:
    """Offline crash recovery: roll back from the undo log.

    Applies every valid entry's old data (newest first) and invalidates
    the log.  Returns the number of entries rolled back.
    """
    entries = list(iter_log_entries(image, layout))
    for entry_addr, addr, size, old_data in reversed(entries):
        image.write(addr, old_data)
    for entry_addr, _, _, _ in entries:
        image.write_u64(entry_addr + 16, 0)
    return len(entries)
