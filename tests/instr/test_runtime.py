"""Tests for the instrumentation runtime (the observer fan-out)."""

from typing import List, Optional, Tuple

import pytest

from repro.core.api import PMTestSession
from repro.core.events import SourceSite
from repro.instr.runtime import PMRuntime, SessionObserver
from repro.pmem.machine import PMMachine


class RecordingObserver:
    """Captures every callback for assertions."""

    def __init__(self, wants_loads: bool = False) -> None:
        self.wants_loads = wants_loads
        self.calls: List[Tuple] = []

    def on_store(self, addr, size, nt, site):
        self.calls.append(("store", addr, size, nt))

    def on_load(self, addr, size):
        self.calls.append(("load", addr, size))

    def on_flush(self, addr, size, kind, site):
        self.calls.append(("flush", addr, size, kind))

    def on_fence(self, kind, site):
        self.calls.append(("fence", kind))

    def on_tx_begin(self, site):
        self.calls.append(("tx_begin",))

    def on_tx_end(self, site):
        self.calls.append(("tx_end",))

    def on_tx_add(self, addr, size, site):
        self.calls.append(("tx_add", addr, size))


class TestFanOut:
    def test_all_ops_reach_observer(self):
        observer = RecordingObserver()
        runtime = PMRuntime(machine=PMMachine(4096), observers=[observer])
        runtime.store(0, b"ab")
        runtime.store_u64(8, 7, nt=True)
        runtime.clwb(0, 2)
        runtime.clflushopt(0, 2)
        runtime.clflush(0, 2)
        runtime.sfence()
        runtime.tx_begin()
        runtime.tx_add(0, 2)
        runtime.tx_end()
        kinds = [call[0] for call in observer.calls]
        assert kinds == [
            "store", "store", "flush", "flush", "flush", "fence",
            "tx_begin", "tx_add", "tx_end",
        ]
        assert observer.calls[1] == ("store", 8, 8, True)
        assert observer.calls[2][3] == "clwb"
        assert observer.calls[4][3] == "clflush"

    def test_persist_is_flush_plus_fence(self):
        observer = RecordingObserver()
        runtime = PMRuntime(machine=PMMachine(4096), observers=[observer])
        runtime.store(0, b"x")
        runtime.persist(0, 1)
        kinds = [call[0] for call in observer.calls]
        assert kinds == ["store", "flush", "fence"]

    def test_hops_fences(self):
        observer = RecordingObserver()
        runtime = PMRuntime(
            machine=PMMachine(4096, model="hops"), observers=[observer]
        )
        runtime.ofence()
        runtime.dfence()
        assert observer.calls == [("fence", "ofence"), ("fence", "dfence")]

    def test_loads_only_reach_opted_in_observers(self):
        plain = RecordingObserver(wants_loads=False)
        greedy = RecordingObserver(wants_loads=True)
        runtime = PMRuntime(
            machine=PMMachine(4096), observers=[plain, greedy]
        )
        runtime.store(0, b"x")
        runtime.load(0, 1)
        assert ("load", 0, 1) in greedy.calls
        assert all(call[0] != "load" for call in plain.calls)

    def test_machine_and_observer_see_same_ops(self):
        observer = RecordingObserver()
        machine = PMMachine(4096)
        runtime = PMRuntime(machine=machine, observers=[observer])
        runtime.store_u64(0, 42)
        assert machine.volatile.read_u64(0) == 42
        assert observer.calls[0] == ("store", 0, 8, False)

    def test_machineless_runtime_rejects_loads(self):
        runtime = PMRuntime(machine=None)
        with pytest.raises(RuntimeError):
            runtime.load(0, 1)

    def test_machineless_runtime_records_ops(self):
        observer = RecordingObserver()
        runtime = PMRuntime(machine=None, observers=[observer])
        runtime.store(0, b"x")
        runtime.sfence()
        assert [c[0] for c in observer.calls] == ["store", "fence"]

    def test_session_attached_as_observer(self):
        session = PMTestSession(workers=0)
        session.thread_init()
        session.start()
        runtime = PMRuntime(machine=PMMachine(4096), session=session)
        assert any(
            isinstance(obs, SessionObserver) for obs in runtime.observers
        )
        runtime.store_u64(0, 1)
        assert session.pending_events == 1
        session.exit()


class TestSiteCapture:
    def test_runtime_site_capture(self):
        session = PMTestSession(workers=0)
        session.thread_init()
        session.start()
        runtime = PMRuntime(
            machine=PMMachine(4096), session=session, capture_sites=True
        )
        runtime.store_u64(0, 1)
        session.is_persist(0, 8)
        result = session.exit()
        [report] = result.failures
        assert report.related_site is not None
        assert report.related_site.file.endswith("test_runtime.py")

    def test_explicit_site_passes_through(self):
        observer = RecordingObserver()
        runtime = PMRuntime(machine=PMMachine(4096), observers=[observer])
        site = SourceSite("somewhere.c", 99)
        session = PMTestSession(workers=0)
        session.thread_init()
        session.start()
        session.write(0, 8, site=site)
        session.is_persist(0, 8)
        result = session.exit()
        assert result.failures[0].related_site == site
