"""Checking rules for the x86 strict persistency model (paper Section 4.4).

Operation semantics:

``write(addr, size)``
    Clears any existing persist/flush state over the range and opens a
    persist interval at the current epoch: the store may persist at any
    time from now on (cache eviction), but is not guaranteed to.
``write_nt(addr, size)``
    A non-temporal store bypasses the cache: it behaves like a write whose
    writeback has already been issued, so the next ``sfence`` persists it
    without a ``clwb``.
``clwb/clflushopt/clflush(addr, size)``
    Opens a flush interval.  Two performance diagnostics fire here:
    flushing a range with a writeback already in flight is a duplicate
    flush, and flushing a range that holds no un-persisted write (never
    written, or already persisted) is an unnecessary writeback
    (Section 5.1.2).  The ISA guarantees a flush is ordered after a prior
    write to the same cache line, which is why ``(write, clwb, sfence)``
    suffices to persist — no fence is needed *between* write and clwb.
``sfence``
    Increments the global timestamp.  Interval closure is derived lazily
    (see :mod:`repro.core.shadow`): a flush issued in epoch ``t`` is
    complete — and its write persistent — once the timestamp has passed
    ``t``, with interval end ``t + 1``.
"""

from __future__ import annotations

from array import array
from typing import Callable, List, Optional, Tuple

from repro.core.events import Event, FLUSH_OPS, Op, SourceSite
from repro.core.interval_array import ArrayIntervalMap, ValueCodec
from repro.core.interval_map import IntervalMap
from repro.core.intervals import Interval
from repro.core.npcompat import load_numpy
from repro.core.reports import Level, Report, ReportCode
from repro.core.rules.base import PersistencyRules, RangeInterval
from repro.core.shadow import SegmentState, ShadowMemory

# the write-run kernel and the array-shadow fast paths vectorize with
# numpy when present (and not disabled via PMTEST_NO_NUMPY)
_np = load_numpy()

_OP_WRITE = Op.WRITE.value

#: sentinel in the codec's flush-epoch column for "never flushed"
_NO_FLUSH = -1


class SegmentStateCodec(ValueCodec):
    """State-code table for :class:`SegmentState` (paper Section 4.4).

    Interns each distinct segment state as a dense code and keeps one
    parallel metadata column the hot checks need:

    ``flush_epochs``
        ``state.flush_epoch`` per code, ``-1`` for unflushed.  With the
        shadow's codes column this answers ``isPersist`` and the
        redundant-writeback pre-tests with pure integer compares — no
        state object is ever decoded on the pass path.

    The per-epoch helper codes (``write_code`` / ``write_nt_code`` /
    ``flush_map``) memoize on the write-run inputs so a whole epoch's
    writes intern through one dict hit per distinct ``(epoch, site)``.
    """

    __slots__ = ("flush_epochs", "_write_memo")

    def __init__(self) -> None:
        super().__init__()
        self.flush_epochs = array("q")
        self._write_memo: dict = {}

    def _on_new(self, value) -> None:
        fe = value.flush_epoch
        self.flush_epochs.append(_NO_FLUSH if fe is None else fe)

    def write_code(self, ts: int, site: Optional[SourceSite]) -> int:
        """Code for a plain store's state at epoch ``ts``."""
        key = (False, ts, site)
        code = self._write_memo.get(key)
        if code is None:
            code = self.encode(SegmentState(ts, None, site))
            self._write_memo[key] = code
        return code

    def write_nt_code(self, ts: int, site: Optional[SourceSite]) -> int:
        """Code for a non-temporal store's state at epoch ``ts``."""
        key = (True, ts, site)
        code = self._write_memo.get(key)
        if code is None:
            code = self.encode(SegmentState(ts, ts, site, site))
            self._write_memo[key] = code
        return code

    def flush_map(
        self, now: int, site: Optional[SourceSite]
    ) -> Callable[[int], int]:
        """First-flush-wins code mapping for one writeback.

        Returns a memoized ``old code -> new code`` function: already
        flushed states keep their code, unflushed states map to their
        ``with_flush(now, site)`` code — the code-level twin of the
        ``record`` closure in :meth:`X86Rules._apply_flush`.
        """
        memo: dict = {}
        values = self.values
        flush_epochs = self.flush_epochs
        encode = self.encode

        def fn(code: int) -> int:
            new = memo.get(code)
            if new is None:
                if flush_epochs[code] != _NO_FLUSH:
                    new = code
                else:
                    new = encode(values[code].with_flush(now, site))
                memo[code] = new
            return new

        return fn


def _run_is_disjoint(addrs, sizes, start: int, end: int) -> bool:
    """Whether the write run ``[start, end)`` covers strictly ascending,
    non-overlapping ranges — the common struct-field/append pattern,
    where every write survives whole and the coverage sweep is pure
    overhead.  Vectorized as two slice comparisons under numpy; the
    fallback is a plain forward scan (columns may be ``array``,
    ``memoryview`` or — for out-of-``int64``-range property-test inputs
    that overflow the numpy conversion — lists)."""
    if _np is not None:
        try:
            a = _np.asarray(addrs[start:end], dtype=_np.int64)
            s = _np.asarray(sizes[start:end], dtype=_np.int64)
        except (OverflowError, ValueError, TypeError):
            pass
        else:
            return bool((a[1:] >= (a + s)[:-1]).all())
    prev_hi = None
    for k in range(start, end):
        lo = addrs[k]
        if prev_hi is not None and lo < prev_hi:
            return False
        prev_hi = lo + sizes[k]
    return True


class X86Rules(PersistencyRules):
    """x86 (clwb + sfence) checking rules."""

    name = "x86"

    supported_ops = frozenset(
        {Op.WRITE, Op.WRITE_NT, Op.CLWB, Op.CLFLUSHOPT, Op.CLFLUSH, Op.SFENCE}
    )

    def state_codec(self) -> SegmentStateCodec:
        return SegmentStateCodec()

    def apply_op(self, shadow: ShadowMemory, event: Event) -> List[Report]:
        op = event.op
        if op is Op.WRITE:
            shadow.pm.assign(
                event.addr,
                event.end,
                SegmentState(shadow.timestamp, None, event.site),
            )
            return []
        if op is Op.WRITE_NT:
            shadow.pm.assign(
                event.addr,
                event.end,
                SegmentState(shadow.timestamp, shadow.timestamp, event.site, event.site),
            )
            return []
        if op in FLUSH_OPS:
            return self._apply_flush(shadow, event)
        if op is Op.SFENCE:
            shadow.advance()
            return []
        self.reject(event)
        return []  # pragma: no cover - reject always raises

    def apply_op_silent(self, shadow: ShadowMemory, event: Event) -> None:
        """State-only :meth:`apply_op` for epoch-shard prefix replay.

        Identical shadow mutations with the diagnostic passes skipped:
        the gap/overlap scans in :meth:`_apply_flush` only *read* the
        map to build warnings, so dropping them cannot change state.
        """
        op = event.op
        if op is Op.WRITE:
            shadow.pm.assign(
                event.addr,
                event.end,
                SegmentState(shadow.timestamp, None, event.site),
            )
            return
        if op is Op.WRITE_NT:
            shadow.pm.assign(
                event.addr,
                event.end,
                SegmentState(shadow.timestamp, shadow.timestamp, event.site, event.site),
            )
            return
        if op in FLUSH_OPS:
            now = shadow.timestamp
            site = event.site
            pm = shadow.pm
            if type(pm) is ArrayIntervalMap:
                # code-level first-flush-wins: no state decode/rebuild
                pm.update_codes(
                    event.addr, event.end, pm.codec.flush_map(now, site)
                )
                return

            def record(lo: int, hi: int, state: SegmentState) -> SegmentState:
                if state.flush_epoch is not None:
                    return state
                return state.with_flush(now, site)

            pm.update(event.addr, event.end, record)
            return
        if op is Op.SFENCE:
            shadow.advance()
            return
        self.reject(event)

    def _apply_flush(self, shadow: ShadowMemory, event: Event) -> List[Report]:
        """Record a writeback and diagnose redundant ones."""
        reports: List[Report] = []
        now = shadow.timestamp
        for lo, hi in shadow.pm.gaps(event.addr, event.end):
            reports.append(
                _warn(
                    ReportCode.UNNECESSARY_FLUSH,
                    f"writeback of [{lo:#x}, {hi:#x}) which was never "
                    "modified in this trace",
                    event,
                )
            )
        for lo, hi, state in shadow.pm.overlaps(event.addr, event.end):
            flush_iv = shadow.x86_flush_interval(state)
            if flush_iv is not None and not flush_iv.closed:
                reports.append(
                    _warn(
                        ReportCode.DUP_FLUSH,
                        f"[{lo:#x}, {hi:#x}) already has a writeback in "
                        f"flight (issued at {state.flush_site})",
                        event,
                    )
                )
            elif flush_iv is not None:
                # Flushed and fenced already, and not re-written since:
                # this writeback moves no new data.
                reports.append(
                    _warn(
                        ReportCode.UNNECESSARY_FLUSH,
                        f"[{lo:#x}, {hi:#x}) is already persistent; "
                        "this writeback is redundant",
                        event,
                    )
                )
        # Only the first writeback after a write matters: a duplicate
        # keeps the original epoch (persistence is guaranteed by the
        # first fence after the *first* writeback), and re-flushing an
        # already-persistent segment must not reopen its closed persist
        # interval.
        def record(lo: int, hi: int, state: SegmentState) -> SegmentState:
            if state.flush_epoch is not None:
                return state
            return state.with_flush(now, event.site)

        shadow.pm.update(event.addr, event.end, record)
        return reports

    def apply_flush_fused(
        self, shadow: ShadowMemory, event: Event
    ) -> List[Report]:
        """:meth:`_apply_flush` with the gap scan derived from the
        overlap scan — one map walk instead of two, identical reports
        in identical order (gap warnings first, ascending; then overlap
        diagnostics, ascending).  Used by the columnar engine's bulk
        replay loop; the differential suite pins the equivalence.
        """
        reports: List[Report] = []
        now = shadow.timestamp
        lo = event.addr
        hi = event.end
        pm = shadow.pm
        if type(pm) is ArrayIntervalMap and pm.stats is None:
            # Pre-test on the raw columns: a writeback is diagnostic-free
            # iff the range is fully covered by segments that have never
            # been flushed.  In that (overwhelmingly common) case the
            # whole op is one code-level carve with zero state decodes;
            # anything else falls through to the generic report-building
            # walk below, which works on either store.
            if self._flush_is_clean(pm, lo, hi):
                pm.update_codes(lo, hi, pm.codec.flush_map(now, event.site))
                return reports
        segments = pm.overlaps(lo, hi)
        prev = lo
        for seg_lo, seg_hi, _ in segments:
            if seg_lo > prev:
                reports.append(
                    _warn(
                        ReportCode.UNNECESSARY_FLUSH,
                        f"writeback of [{prev:#x}, {seg_lo:#x}) which was "
                        "never modified in this trace",
                        event,
                    )
                )
            prev = seg_hi
        if prev < hi:
            reports.append(
                _warn(
                    ReportCode.UNNECESSARY_FLUSH,
                    f"writeback of [{prev:#x}, {hi:#x}) which was never "
                    "modified in this trace",
                    event,
                )
            )
        for seg_lo, seg_hi, state in segments:
            flush_iv = shadow.x86_flush_interval(state)
            if flush_iv is not None and not flush_iv.closed:
                reports.append(
                    _warn(
                        ReportCode.DUP_FLUSH,
                        f"[{seg_lo:#x}, {seg_hi:#x}) already has a "
                        f"writeback in flight (issued at {state.flush_site})",
                        event,
                    )
                )
            elif flush_iv is not None:
                reports.append(
                    _warn(
                        ReportCode.UNNECESSARY_FLUSH,
                        f"[{seg_lo:#x}, {seg_hi:#x}) is already persistent; "
                        "this writeback is redundant",
                        event,
                    )
                )
        site = event.site

        def record(s_lo: int, s_hi: int, state: SegmentState) -> SegmentState:
            if state.flush_epoch is not None:
                return state
            return state.with_flush(now, site)

        shadow.pm.update(lo, hi, record)
        return reports

    @staticmethod
    def _flush_is_clean(pm: ArrayIntervalMap, lo: int, hi: int) -> bool:
        """Whether a writeback of ``[lo, hi)`` emits no diagnostics.

        True iff the range is fully covered and no overlapped segment
        carries flush state (any gap is an unnecessary-writeback
        warning; any flushed segment is a duplicate or redundant one).
        Pure integer compares over the columns.
        """
        i0, i1 = pm._window(lo, hi)
        if i0 == i1:
            return False
        starts, ends, codes = pm._starts, pm._ends, pm._codes
        flush_epochs = pm.codec.flush_epochs
        if _np is not None and not pm._boxed and i1 - i0 >= 16:
            sv = _np.frombuffer(starts, dtype=_np.int64)[i0:i1]
            ev = _np.frombuffer(ends, dtype=_np.int64)[i0:i1]
            cv = _np.frombuffer(codes, dtype=_np.int64)[i0:i1]
            if sv[0] > lo or ev[-1] < hi:
                return False
            if not bool((sv[1:] == ev[:-1]).all()):
                return False
            ftab = _np.frombuffer(flush_epochs, dtype=_np.int64)
            return bool((ftab[cv] == _NO_FLUSH).all())
        cursor = lo
        for i in range(i0, i1):
            if starts[i] > cursor or flush_epochs[codes[i]] != _NO_FLUSH:
                return False
            cursor = ends[i]
        return cursor >= hi

    def check_persist_pass_many(
        self, shadow: ShadowMemory, ranges
    ) -> List[bool]:
        """Batched ``isPersist`` pass pre-test over an array shadow.

        One ``searchsorted`` pass resolves every query's segment window;
        each window passes iff all of its codes map to a closed persist
        interval (flushed, and fenced since: ``flush_epoch < timestamp``).
        ``False`` entries are *maybe-failures*: the caller replays those
        through the full report-building checker.  Only called with
        ``stats`` detached — the pre-test performs no ``overlaps`` call
        to account for.
        """
        pm = shadow.pm
        now = shadow.timestamp
        i0s, i1s = pm.bounds_many(ranges)
        codes = pm._codes
        flush_epochs = pm.codec.flush_epochs
        out: List[bool] = []
        if _np is not None and len(codes) and not pm._boxed:
            cv = _np.frombuffer(codes, dtype=_np.int64)
            ftab = _np.frombuffer(flush_epochs, dtype=_np.int64)
            open_ = (ftab == _NO_FLUSH) | (ftab >= now)
            # One prefix sum answers every window: a range passes iff
            # it contains zero open-interval codes.
            bad = _np.cumsum(open_[cv])
            i0a = _np.asarray(i0s, dtype=_np.int64)
            i1a = _np.asarray(i1s, dtype=_np.int64)
            empty = i0a >= i1a
            # Clamp indices for the empty windows; their (meaningless)
            # counts are masked out below.
            hi = _np.maximum(i1a - 1, 0)
            lo = _np.maximum(i0a - 1, 0)
            total = bad[hi] - _np.where(i0a > 0, bad[lo], 0)
            return (empty | (total == 0)).tolist()
        for i0, i1 in zip(i0s, i1s):
            ok = True
            for i in range(i0, i1):
                fe = flush_epochs[codes[i]]
                if fe == _NO_FLUSH or fe >= now:
                    ok = False
                    break
            out.append(ok)
        return out

    def apply_write_run(
        self,
        shadow: ShadowMemory,
        ops,
        addrs,
        sizes,
        site_at: Callable[[int], Optional[SourceSite]],
        start: int,
        end: int,
    ) -> None:
        """Epoch kernel: apply a pure write/write_nt run ``[start, end)``
        (all sizes positive) as one whole-run operation.

        The final shadow segmentation is byte-identical to sequential
        :meth:`apply_op_silent` calls, by one of two arguments:

        * **Disjoint runs** (ascending, non-overlapping — detected
          vectorized by :func:`_run_is_disjoint`): every write is the
          sole writer of its range, so forward per-range ``assign``
          calls are literally the sequential replay minus the dead
          scratch-event fills.
        * **Overlapping runs**: one reverse coverage sweep finds, for
          each write, the subranges no *later* write in the run covers
          (gap queries against an accumulating coverage map); only
          those surviving pieces are assigned, in forward write order.
          Each surviving piece has exactly the last-writer state the
          sequential replay would leave it with, and dead writes never
          touch the shadow map at all.

        Writes never emit reports and the epoch timestamp cannot
        advance inside a run, so nothing can observe the intermediate
        states the sequential replay would have created.
        """
        ts = shadow.timestamp
        pm = shadow.pm
        write = _OP_WRITE
        if type(pm) is ArrayIntervalMap:
            # Batched path: intern each write's state as a code (one
            # dict hit per distinct site within the epoch) and let the
            # store apply the whole run as one sorted sweep + splice.
            codec = pm.codec
            write_code = codec.write_code
            write_nt_code = codec.write_nt_code
            # Memoize per run on (op, site identity): sites are interned
            # by the column store, so id() is stable for the run and
            # skips re-hashing the SourceSite dataclass per write.
            local: dict = {}
            items = []
            for k in range(start, end):
                lo = addrs[k]
                op = ops[k]
                site = site_at(k)
                key = (op, id(site))
                code = local.get(key)
                if code is None:
                    code = (
                        write_code(ts, site)
                        if op == write
                        else write_nt_code(ts, site)
                    )
                    local[key] = code
                items.append((lo, lo + sizes[k], code))
            pm.assign_codes_many(items)
            return
        pm_assign = pm.assign
        if _run_is_disjoint(addrs, sizes, start, end):
            for k in range(start, end):
                site = site_at(k)
                lo = addrs[k]
                pm_assign(
                    lo,
                    lo + sizes[k],
                    SegmentState(ts, None, site)
                    if ops[k] == write
                    else SegmentState(ts, ts, site, site),
                )
            return
        coverage: IntervalMap[bool] = IntervalMap()
        coverage_gaps = coverage.gaps
        coverage_assign = coverage.assign
        pieces: List[Tuple[int, List[Tuple[int, int]]]] = []
        for k in range(end - 1, start - 1, -1):
            lo = addrs[k]
            hi = lo + sizes[k]
            gaps = coverage_gaps(lo, hi)
            if gaps:
                pieces.append((k, gaps))
                coverage_assign(lo, hi, True)
        for k, gaps in reversed(pieces):
            site = site_at(k)
            state = (
                SegmentState(ts, None, site)
                if ops[k] == write
                else SegmentState(ts, ts, site, site)
            )
            for lo, hi in gaps:
                pm_assign(lo, hi, state)

    def persist_intervals(
        self, shadow: ShadowMemory, lo: int, hi: int
    ) -> List[RangeInterval]:
        return [
            (s, e, shadow.x86_interval(state), state)
            for s, e, state in shadow.pm.overlaps(lo, hi)
        ]

    def ordered(self, a: Interval, b: Interval) -> bool:
        return a.ordered_before(b)


def _warn(code: ReportCode, message: str, event: Event) -> Report:
    return Report(
        level=Level.WARN,
        code=code,
        message=message,
        site=event.site,
        seq=event.seq,
    )
