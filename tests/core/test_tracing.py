"""Tests for the span tracer: fake clocks, nesting, misuse, output."""

import itertools
import json

import pytest

from repro.core.tracing import (
    SpanContext,
    Tracer,
    TracingError,
    merge_trace_files,
    span_tree,
)


class FakeClock:
    """Deterministic nanosecond clock: each read advances by ``step``."""

    def __init__(self, step=1000):
        self.now = 0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def make_tracer(**kwargs):
    clock = FakeClock()
    kwargs.setdefault("clock", clock)
    return Tracer(**kwargs), clock


class TestSpans:
    def test_span_duration_from_injected_clock(self):
        tracer, clock = make_tracer()
        clock.step = 0
        clock.now = 5_000
        with tracer.span("check"):
            clock.now = 12_000
        (event,) = tracer.events()
        assert event["ph"] == "X"
        assert event["name"] == "check"
        assert event["dur"] == pytest.approx(7.0)  # microseconds

    def test_nested_spans_close_lifo(self):
        tracer, _ = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [e["name"] for e in tracer.events()]
        assert names == ["inner", "outer"]  # inner ends first
        assert tracer.open_spans == 0

    def test_span_args_survive(self):
        tracer, _ = make_tracer()
        with tracer.span("submit", trace_id=7):
            pass
        (event,) = tracer.events()
        # Workload args survive next to the span's identity keys.
        assert event["args"]["trace_id"] == 7
        assert set(event["args"]) == {"trace_id", "span_id"}

    def test_instant_and_counter_events(self):
        tracer, _ = make_tracer()
        tracer.instant("backend.degraded", old="process")
        tracer.counter("queue", depth=3)
        kinds = [e["ph"] for e in tracer.events()]
        assert kinds == ["i", "C"]
        assert tracer.events()[1]["args"] == {"depth": 3}


class TestMisuse:
    def test_strict_unbalanced_end_raises(self):
        tracer, _ = make_tracer(strict=True)
        tracer.begin("a")
        with pytest.raises(TracingError, match="unbalanced"):
            tracer.end("b")

    def test_strict_end_without_begin_raises(self):
        tracer, _ = make_tracer(strict=True)
        with pytest.raises(TracingError, match="no open span"):
            tracer.end("a")

    def test_strict_leak_at_finish_raises(self):
        tracer, _ = make_tracer(strict=True)
        tracer.begin("leaky")
        with pytest.raises(TracingError, match="never closed"):
            tracer.finish()

    def test_production_leak_warns_and_force_closes(self):
        tracer, _ = make_tracer(strict=False)
        tracer.begin("leaky")
        with pytest.warns(RuntimeWarning, match="never closed"):
            tracer.finish()
        (event,) = tracer.events()
        assert event["name"] == "leaky"
        assert event["ph"] == "X"  # still a complete span in the timeline

    def test_production_unbalanced_end_warns_but_closes(self):
        tracer, _ = make_tracer(strict=False)
        tracer.begin("a")
        with pytest.warns(RuntimeWarning, match="unbalanced"):
            tracer.end("b")
        assert tracer.open_spans == 0

    def test_finish_is_idempotent(self):
        tracer, _ = make_tracer()
        tracer.finish()
        tracer.finish()

    def test_recording_after_finish_raises(self):
        tracer, _ = make_tracer()
        tracer.finish()
        with pytest.raises(TracingError, match="finished"):
            tracer.begin("late")


class TestOutput:
    def test_write_emits_valid_chrome_trace(self, tmp_path):
        tracer, _ = make_tracer(process_name="unit-test")
        with tracer.span("drain"):
            tracer.instant("mark")
        path = tmp_path / "trace.json"
        count = tracer.write(path)
        assert count == 2
        data = json.loads(path.read_text())
        assert isinstance(data, list)
        assert data[0]["ph"] == "M"
        assert data[0]["args"] == {"name": "unit-test"}
        for event in data[1:]:
            assert {"ph", "name", "pid", "tid", "ts"} <= set(event)

    def test_write_finishes_first(self, tmp_path):
        tracer, _ = make_tracer()
        tracer.begin("open")
        with pytest.warns(RuntimeWarning):
            tracer.write(tmp_path / "t.json")
        data = json.loads((tmp_path / "t.json").read_text())
        assert any(e.get("name") == "open" for e in data)


def make_deterministic_tracer(**kwargs):
    """A tracer whose span ids are 1, 2, 3, ... for exact assertions."""
    ids = itertools.count(1)
    kwargs.setdefault("ids", lambda: next(ids))
    return make_tracer(**kwargs)[0]


class TestSpanIdentity:
    def test_context_pair_roundtrip(self):
        ctx = SpanContext(7, 11)
        assert ctx.to_pair() == (7, 11)
        assert SpanContext.from_pair((7, 11)) == ctx
        assert hash(SpanContext.from_pair([7, 11])) == hash(ctx)
        assert ctx != SpanContext(7, 12)

    def test_deterministic_ids_and_trace_id(self):
        tracer = make_deterministic_tracer()
        assert tracer.trace_id == 1  # first id becomes the trace id
        with tracer.span("a"):
            pass
        (event,) = tracer.events()
        assert event["args"]["span_id"] == f"{2:016x}"
        assert "parent_id" not in event["args"]

    def test_nesting_records_parent_links(self):
        tracer = make_deterministic_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events()
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]

    def test_explicit_parent_beats_stack(self):
        tracer = make_deterministic_tracer()
        remote = SpanContext(tracer.trace_id, 99)
        with tracer.span("enclosing"):
            with tracer.span("child", parent=remote):
                pass
        child = tracer.events()[0]
        assert child["args"]["parent_id"] == f"{99:016x}"

    def test_root_parents_parentless_spans(self):
        tracer = make_deterministic_tracer(root=SpanContext(5, 42))
        assert tracer.trace_id == 5  # adopted from the root context
        with tracer.span("hang"):
            pass
        handle = tracer.start_span("also")
        handle.finish()
        for event in tracer.events():
            assert event["args"]["parent_id"] == f"{42:016x}"

    def test_current_context_inner_then_root(self):
        root = SpanContext(5, 42)
        tracer = make_deterministic_tracer(root=root)
        assert tracer.current_context() == root
        with tracer.span("open"):
            inner = tracer.current_context()
            assert inner.trace_id == 5
            assert inner.span_id != 42
        assert tracer.current_context() == root

    def test_start_span_handles_interleave(self):
        tracer = make_deterministic_tracer()
        a = tracer.start_span("a")
        b = tracer.start_span("b")
        a.finish(extra=1)  # out of LIFO order on purpose
        b.finish()
        a.finish()  # idempotent
        names = [e["name"] for e in tracer.events()]
        assert names == ["a", "b"]
        assert tracer.events()[0]["args"]["extra"] == 1
        assert tracer.open_spans == 0

    def test_start_span_after_finish_raises(self):
        tracer = make_deterministic_tracer()
        tracer.finish()
        with pytest.raises(TracingError, match="finished"):
            tracer.start_span("late")

    def test_drain_then_absorb_moves_events(self):
        worker = make_deterministic_tracer(root=SpanContext(5, 42))
        with worker.span("worker.batch"):
            pass
        shipped = worker.drain_events()
        assert worker.events() == []  # exactly-once shipping
        pool = make_deterministic_tracer()
        pool.absorb_events(shipped)
        (event,) = pool.events()
        assert event["name"] == "worker.batch"
        assert event["args"]["parent_id"] == f"{42:016x}"


class TestMergedTimelines:
    def test_merge_links_spans_across_files(self, tmp_path):
        client = make_deterministic_tracer(process_name="client")
        session = client.start_span("client.session")
        # The server side opens its span under the wire-carried context.
        server = make_deterministic_tracer(process_name="server")
        daemon = server.start_span("daemon.session",
                                   parent=session.context)
        daemon.finish()
        session.finish()
        client_file = tmp_path / "client.json"
        server_file = tmp_path / "server.json"
        client.write(client_file)
        server.write(server_file)
        merged = tmp_path / "merged.json"
        count = merge_trace_files([client_file, server_file], merged)
        events = json.loads(merged.read_text())
        assert len(events) == count
        tree = span_tree(events)
        by_name = {
            e["name"]: e["args"] for e in events if e["ph"] == "X"
        }
        parent = by_name["daemon.session"]["parent_id"]
        assert parent == by_name["client.session"]["span_id"]
        assert parent in tree  # the link resolves inside the merge

    def test_merge_rejects_non_trace_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a trace"}')
        with pytest.raises(ValueError, match="trace event array"):
            merge_trace_files([bad], tmp_path / "out.json")
