"""Model-based correctness tests for all five persistent structures.

Every structure is driven against a plain dict model with random and
hypothesis-generated operation sequences; the persistent structure must
agree with the model at every step.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures import ALL_STRUCTURES
from tests.structures.conftest import make_pool

STRUCTURES = sorted(ALL_STRUCTURES)


def make_map(name, **kwargs):
    return ALL_STRUCTURES[name](make_pool(), value_size=16, **kwargs)


@pytest.mark.parametrize("name", STRUCTURES)
class TestBasicOperations:
    def test_insert_lookup(self, name):
        m = make_map(name)
        m.insert(5, b"five")
        assert m.lookup(5) == b"five"
        assert m.lookup(6) is None

    def test_update_existing_key(self, name):
        m = make_map(name)
        m.insert(5, b"old")
        m.insert(5, b"new")
        assert m.lookup(5) == b"new"
        assert len(m) == 1

    def test_default_payload_size(self, name):
        m = make_map(name)
        m.insert(7)
        assert len(m.lookup(7)) == 16

    def test_items_matches_inserts(self, name):
        m = make_map(name)
        expected = {}
        for key in [9, 3, 14, 1, 20, 6]:
            m.insert(key)
            expected[key] = m.default_payload(key)
        assert dict(m.items()) == expected

    def test_contains(self, name):
        m = make_map(name)
        m.insert(1)
        assert 1 in m
        assert 2 not in m

    def test_empty_map(self, name):
        m = make_map(name)
        assert m.lookup(1) is None
        assert list(m.items()) == []
        assert len(m) == 0

    def test_unknown_fault_rejected(self, name):
        with pytest.raises(ValueError):
            make_map(name, faults=("made-up-fault",))

    def test_ascending_and_descending_inserts(self, name):
        m = make_map(name)
        for key in range(30):
            m.insert(key)
        for key in reversed(range(30, 60)):
            m.insert(key)
        assert sorted(k for k, _ in m.items()) == list(range(60))


@pytest.mark.parametrize(
    "name", ["ctree", "btree", "rbtree", "hashmap_tx", "hashmap_atomic"]
)
class TestRemove:
    def test_remove_present(self, name):
        m = make_map(name)
        m.insert(5)
        assert m.remove(5)
        assert m.lookup(5) is None
        assert len(m) == 0

    def test_remove_absent(self, name):
        m = make_map(name)
        m.insert(5)
        assert not m.remove(6)
        assert len(m) == 1

    def test_remove_all_then_reuse(self, name):
        m = make_map(name)
        for key in range(20):
            m.insert(key)
        for key in range(20):
            assert m.remove(key)
        assert len(m) == 0
        m.insert(99)
        assert m.lookup(99) is not None

    def test_remove_interleaved(self, name):
        m = make_map(name)
        model = {}
        rng = random.Random(13)
        for step in range(300):
            key = rng.randrange(40)
            if rng.random() < 0.55:
                payload = bytes([step % 256]) * 16
                m.insert(key, payload)
                model[key] = payload
            else:
                assert m.remove(key) == (key in model)
                model.pop(key, None)
        assert dict(m.items()) == model


class TestOrderedIteration:
    def test_btree_items_sorted(self):
        m = make_map("btree")
        rng = random.Random(3)
        keys = rng.sample(range(1000), 120)
        for key in keys:
            m.insert(key)
        assert [k for k, _ in m.items()] == sorted(keys)

    def test_rbtree_items_sorted(self):
        m = make_map("rbtree")
        rng = random.Random(4)
        keys = rng.sample(range(1000), 120)
        for key in keys:
            m.insert(key)
        assert [k for k, _ in m.items()] == sorted(keys)


@pytest.mark.parametrize("name", STRUCTURES)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "remove", "lookup"]),
            st.integers(0, 30),
        ),
        max_size=60,
    )
)
@settings(max_examples=25, deadline=None)
def test_matches_dict_model(name, ops):
    m = make_map(name)
    model = {}
    for op, key in ops:
        if op == "insert":
            payload = key.to_bytes(2, "little") * 8
            m.insert(key, payload)
            model[key] = payload
        elif op == "remove":
            try:
                assert m.remove(key) == (key in model)
                model.pop(key, None)
            except NotImplementedError:
                pass
        else:
            assert m.lookup(key) == model.get(key)
    assert dict(m.items()) == model


class TestLargePayloads:
    @pytest.mark.parametrize("value_size", [64, 256, 1024, 4096])
    def test_payload_size_sweep(self, value_size):
        """The paper's transaction-size axis (Figure 10)."""
        m = ALL_STRUCTURES["btree"](make_pool(), value_size=value_size)
        m.insert(1)
        assert len(m.lookup(1)) == value_size
