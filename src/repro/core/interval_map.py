"""An ordered map from disjoint address ranges to values.

This is the data structure the paper calls the shadow memory's "interval
tree" (Section 4.4): addresses are grouped into maximal ranges that share a
persistency status, so a trace with coarse-grained writes stays compact and
every operation costs ``O(log n + k)`` where ``k`` is the number of touched
segments.

The implementation keeps two parallel sorted lists (segment starts for
bisection, and ``(start, end, value)`` tuples) rather than a pointer-based
tree: Python-level pointer chasing is slower than ``list`` splicing for the
segment counts PMTest encounters, and the asymptotics for lookup are the
same.  All ranges are half-open ``[start, end)`` over integer addresses.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Generic, Iterable, Iterator, List, Optional, Tuple, TypeVar

# QueryStats moved to metrics.py (it is a metrics type, owned per
# checker); re-exported here because the map is where it attaches.
from repro.core.metrics import QueryStats

__all__ = ["IntervalMap", "QueryStats", "Segment"]

V = TypeVar("V")

Segment = Tuple[int, int, V]


class IntervalMap(Generic[V]):
    """Map disjoint integer ranges ``[start, end)`` to values.

    Values are treated as immutable by the map: mutating operations replace
    segments rather than editing values in place, so callers may freely
    share value objects between segments.
    """

    __slots__ = ("_starts", "_segments", "stats")

    def __init__(self, segments: Optional[Iterable[Segment]] = None) -> None:
        self._starts: List[int] = []
        self._segments: List[Segment] = []
        #: optional :class:`QueryStats`; ``None`` (the default) keeps the
        #: query path at a single extra branch
        self.stats: Optional[QueryStats] = None
        if segments is not None:
            for start, end, value in segments:
                self.assign(start, end, value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._segments)

    def __bool__(self) -> bool:
        return bool(self._segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"[{s}, {e}): {v!r}" for s, e, v in self._segments)
        return f"IntervalMap({inner})"

    def get(self, point: int) -> Optional[V]:
        """Return the value covering ``point``, or ``None``."""
        i = bisect_right(self._starts, point) - 1
        if i >= 0:
            start, end, value = self._segments[i]
            if start <= point < end:
                return value
        return None

    def overlaps(self, lo: int, hi: int, clip: bool = True) -> List[Segment]:
        """Return segments intersecting ``[lo, hi)``.

        With ``clip=True`` (the default) segment bounds are clipped to the
        query range; otherwise the stored bounds are returned.
        """
        _check_range(lo, hi)
        # Bound the scan with bisection on segment starts: slicing
        # ``self._segments[i0:]`` would copy every remaining segment on
        # every query, turning point queries over a large map into O(n).
        i0 = self._first_overlap(lo)
        i1 = bisect_left(self._starts, hi, i0)
        stats = self.stats
        if stats is not None:
            stats.queries += 1
            stats.scanned += i1 - i0
        segments = self._segments
        if not clip:
            return segments[i0:i1]
        out: List[Segment] = []
        for i in range(i0, i1):
            start, end, value = segments[i]
            out.append(
                (start if start > lo else lo, end if end < hi else hi, value)
            )
        return out

    def gaps(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """Return the maximal subranges of ``[lo, hi)`` not covered."""
        _check_range(lo, hi)
        out: List[Tuple[int, int]] = []
        cursor = lo
        for start, end, _ in self.overlaps(lo, hi):
            if start > cursor:
                out.append((cursor, start))
            cursor = end
        if cursor < hi:
            out.append((cursor, hi))
        return out

    def covers(self, lo: int, hi: int) -> bool:
        """Whether every address in ``[lo, hi)`` is mapped.

        A non-allocating early-exit scan: unlike ``not gaps(lo, hi)``
        it builds no clipped segment list and stops at the first hole,
        so the common fully-covered/immediately-uncovered cases cost a
        bisection plus the segments actually walked.
        """
        _check_range(lo, hi)
        segments = self._segments
        n = len(segments)
        i = i0 = self._first_overlap(lo)
        cursor = lo
        while i < n and cursor < hi:
            start, end, _ = segments[i]
            if start > cursor:
                break  # hole before this segment
            cursor = end
            i += 1
        stats = self.stats
        if stats is not None:
            stats.queries += 1
            stats.scanned += i - i0
        return cursor >= hi

    def total_span(self) -> int:
        """Total number of addresses mapped."""
        return sum(end - start for start, end, _ in self._segments)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def assign(self, lo: int, hi: int, value: V) -> None:
        """Set ``[lo, hi)`` to ``value``, overwriting any previous mapping."""
        _check_range(lo, hi)
        i0, i1, prefix, suffix = self._carve(lo, hi)
        replacement = prefix + [(lo, hi, value)] + suffix
        self._splice(i0, i1, replacement)

    def erase(self, lo: int, hi: int) -> None:
        """Remove any mapping over ``[lo, hi)``."""
        _check_range(lo, hi)
        i0, i1, prefix, suffix = self._carve(lo, hi)
        self._splice(i0, i1, prefix + suffix)

    def update(self, lo: int, hi: int, fn: Callable[[int, int, V], V]) -> None:
        """Replace each mapped subrange of ``[lo, hi)`` with ``fn``'s result.

        ``fn`` receives the clipped ``(start, end, value)`` of each
        overlapping piece; unmapped gaps are left unmapped.  Segments
        partially inside the range are split at the range boundary.

        A mutation, not a query: it does not count into ``stats`` (the
        paper's query-depth metric) and clips the overlapping segments
        straight off ``_carve``'s one bisection pass instead of running
        a second one through ``overlaps``.
        """
        _check_range(lo, hi)
        i0, i1, prefix, suffix = self._carve(lo, hi)
        segments = self._segments
        middle: List[Segment] = []
        for i in range(i0, i1):
            start, end, value = segments[i]
            if start < lo:
                start = lo
            if end > hi:
                end = hi
            middle.append((start, end, fn(start, end, value)))
        self._splice(i0, i1, prefix + middle + suffix)

    def update_all(self, fn: Callable[[int, int, V], V]) -> None:
        """Replace every segment value with ``fn``'s result."""
        self._segments = [(s, e, fn(s, e, v)) for s, e, v in self._segments]

    def clear(self) -> None:
        """Remove all mappings."""
        self._starts.clear()
        self._segments.clear()

    def coalesce(self) -> None:
        """Merge adjacent segments whose values compare equal.

        Useful for boolean coverage maps (e.g. the transaction log tree)
        where long runs of identical values would otherwise accumulate.
        """
        if not self._segments:
            return
        merged: List[Segment] = [self._segments[0]]
        for start, end, value in self._segments[1:]:
            pstart, pend, pvalue = merged[-1]
            if pend == start and pvalue == value:
                merged[-1] = (pstart, end, value)
            else:
                merged.append((start, end, value))
        self._segments = merged
        self._starts = [s for s, _, _ in merged]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _first_overlap(self, lo: int) -> int:
        """Index of the first segment whose end is greater than ``lo``."""
        i = bisect_right(self._starts, lo) - 1
        if i >= 0 and self._segments[i][1] > lo:
            return i
        return i + 1

    def _carve(
        self, lo: int, hi: int
    ) -> Tuple[int, int, List[Segment], List[Segment]]:
        """Locate segments overlapping ``[lo, hi)`` and their remainders.

        Returns ``(i0, i1, prefix, suffix)`` where segments ``[i0, i1)``
        overlap the range, ``prefix`` is the sub-segment of the first
        overlapping segment left of ``lo`` (possibly empty), and ``suffix``
        the sub-segment of the last overlapping segment right of ``hi``.
        """
        i0 = self._first_overlap(lo)
        i1 = bisect_left(self._starts, hi, i0)
        prefix: List[Segment] = []
        suffix: List[Segment] = []
        if i0 < i1:
            fstart, fend, fvalue = self._segments[i0]
            if fstart < lo:
                prefix = [(fstart, lo, fvalue)]
            lstart, lend, lvalue = self._segments[i1 - 1]
            if lend > hi:
                suffix = [(hi, lend, lvalue)]
        return i0, i1, prefix, suffix

    def _splice(self, i0: int, i1: int, replacement: List[Segment]) -> None:
        self._segments[i0:i1] = replacement
        self._starts[i0:i1] = [s for s, _, _ in replacement]


def _check_range(lo: int, hi: int) -> None:
    if lo >= hi:
        raise ValueError(f"empty or inverted range [{lo}, {hi})")
