"""A pmemcheck-like checker: byte-granular shadow state, no coalescing.

Pmemcheck (the Valgrind tool shipped with PMDK) rides on binary
instrumentation: every memory access passes through the tool, and store
persistence state is tracked fine-grained (its store list is maintained
and split at byte granularity) through a ``DIRTY -> FLUSHED -> FENCED``
state machine.  At the end of the run it reports every store that never
became persistent, plus redundant-flush diagnostics along the way.

Three deliberate design points model why the paper measures it well
behind PMTest (5.2–8.9x slower, Fig. 10a) — they are the *algorithmic*
differences, reproduced here with the implementation language held
constant:

1. **Granularity** — one shadow cell per byte, against PMTest's
   coalesced interval map: a 4 KiB transaction is a few interval-map
   segments for PMTest but 4096 shadow updates here, which is exactly
   why PMTest's relative overhead falls with transaction size and
   pmemcheck's does not.
2. **Instrumentation, not annotation** — the tool intercepts loads too
   (``wants_loads``); PMTest only sees annotated PM operations.
3. **No decoupling** — validation state is updated inline on the
   program thread rather than by workers consuming batched traces.

It attaches to the same :class:`~repro.instr.runtime.PMRuntime`
observer seam as PMTest, so both tools can be timed over the identical
execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.events import SourceSite

#: Per-byte shadow states.
DIRTY = 0
FLUSHED = 1


@dataclass(frozen=True)
class PmemcheckFinding:
    """One diagnostic (mirrors pmemcheck's output lines)."""

    kind: str  # "not-persisted" | "redundant-flush" | "unneeded-flush"
    addr: int
    size: int
    site: Optional[SourceSite] = None

    def __str__(self) -> str:
        where = f" at {self.site}" if self.site else ""
        return (
            f"[pmemcheck] {self.kind}: [{self.addr:#x}, "
            f"{self.addr + self.size:#x}){where}"
        )


class PmemcheckTool:
    """Byte-granular persistence checker (TraceObserver implementation)."""

    #: binary instrumentation intercepts every memory access, loads
    #: included — the runtime routes loads here (PMTest never pays this)
    wants_loads = True

    def __init__(self, track_findings: bool = True) -> None:
        self.track_findings = track_findings
        #: byte address -> (state, site of the store that dirtied it)
        self._shadow: Dict[int, Tuple[int, Optional[SourceSite]]] = {}
        self.findings: List[PmemcheckFinding] = []
        self.stores_tracked = 0
        self.flushes_tracked = 0
        self.fences_tracked = 0
        self.loads_tracked = 0
        self.loads_of_unpersisted = 0

    # ------------------------------------------------------------------
    # TraceObserver interface
    # ------------------------------------------------------------------
    def on_store(self, addr: int, size: int, nt: bool,
                 site: Optional[SourceSite]) -> None:
        self.stores_tracked += 1
        shadow = self._shadow
        state = FLUSHED if nt else DIRTY
        for byte in range(addr, addr + size):
            shadow[byte] = (state, site)

    def on_load(self, addr: int, size: int) -> None:
        """Every load performs a shadow lookup (instrumentation cost)."""
        self.loads_tracked += 1
        shadow = self._shadow
        for byte in range(addr, addr + size):
            if byte in shadow:
                self.loads_of_unpersisted += 1
                return

    def on_flush(self, addr: int, size: int, kind: str,
                 site: Optional[SourceSite]) -> None:
        self.flushes_tracked += 1
        shadow = self._shadow
        flushed_something = False
        saw_redundant = False
        for byte in range(addr, addr + size):
            cell = shadow.get(byte)
            if cell is None:
                continue
            state, store_site = cell
            if state == DIRTY:
                shadow[byte] = (FLUSHED, store_site)
                flushed_something = True
            else:
                saw_redundant = True
        if saw_redundant:
            self._report("redundant-flush", addr, size, site)
        elif not flushed_something:
            self._report("unneeded-flush", addr, size, site)

    def on_fence(self, kind: str, site: Optional[SourceSite]) -> None:
        self.fences_tracked += 1
        if kind == "ofence":
            return  # no durability
        shadow = self._shadow
        if kind == "dfence":
            shadow.clear()
            return
        retired = [
            byte for byte, (state, _) in shadow.items() if state == FLUSHED
        ]
        for byte in retired:
            del shadow[byte]

    def on_tx_begin(self, site: Optional[SourceSite]) -> None:
        pass  # pmemcheck's TX macros are out of scope for the comparison

    def on_tx_end(self, site: Optional[SourceSite]) -> None:
        pass

    def on_tx_add(self, addr: int, size: int,
                  site: Optional[SourceSite]) -> None:
        pass

    # ------------------------------------------------------------------
    def finish(self) -> List[PmemcheckFinding]:
        """End-of-run report: every byte range that never became durable."""
        for addr, size, site in self._pending_ranges():
            self._report("not-persisted", addr, size, site, force=True)
        self._shadow.clear()
        return self.findings

    @property
    def pending_stores(self) -> int:
        """Number of contiguous not-yet-durable byte ranges."""
        return len(self._pending_ranges())

    def _pending_ranges(self) -> List[Tuple[int, int, Optional[SourceSite]]]:
        out: List[Tuple[int, int, Optional[SourceSite]]] = []
        run_start: Optional[int] = None
        run_site: Optional[SourceSite] = None
        previous = None
        for byte in sorted(self._shadow):
            if previous is None or byte != previous + 1:
                if run_start is not None:
                    out.append((run_start, previous - run_start + 1, run_site))
                run_start = byte
                run_site = self._shadow[byte][1]
            previous = byte
        if run_start is not None and previous is not None:
            out.append((run_start, previous - run_start + 1, run_site))
        return out

    def _report(self, kind: str, addr: int, size: int,
                site: Optional[SourceSite], force: bool = False) -> None:
        if self.track_findings or force:
            self.findings.append(PmemcheckFinding(kind, addr, size, site))
