"""C-style spelling of the PMTest interface (paper Table 2, verbatim).

These module-level functions operate on a process-global default session,
mirroring how the C library is used.  They exist so the examples and the
synthetic-bug corpus can read like the paper's listings::

    PMTest_INIT()
    PMTest_START()
    ...
    isOrderedBefore(addrA, sizeA, addrB, sizeB)
    isPersist(addrB, sizeB)
    PMTest_SEND_TRACE()
    result = PMTest_GET_RESULT()
    PMTest_EXIT()

New code should prefer :class:`repro.core.api.PMTestSession` directly —
a global singleton is faithful to the C API but is not the Pythonic seam
for composing with the rest of this library.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.api import PMTestSession
from repro.core.reports import TestResult
from repro.core.rules import PersistencyRules

_session: Optional[PMTestSession] = None


def PMTest_INIT(
    rules: Optional[PersistencyRules] = None,
    workers: int = 1,
    capture_sites: bool = False,
    backend: Optional[str] = None,
    batch_size: Optional[int] = None,
    transport: Optional[str] = None,
    check_timeout: Optional[float] = None,
    max_retries: int = 2,
    fallback: bool = True,
    faults=None,
) -> PMTestSession:
    """Create (and install) the global session.

    ``backend`` selects the checking backend (``inline``/``thread``/
    ``process``; ``None`` derives it from ``workers``),
    ``batch_size`` pins traces-per-IPC-message for the process backend
    (``None``: adaptive), and ``transport`` picks its IPC channel
    (``queue``/``shm``).  ``check_timeout``/``max_retries``/
    ``fallback`` configure the checking pipeline's watchdog,
    worker-respawn budget, and backend degradation ladder; ``faults``
    installs a deterministic chaos plan (:mod:`repro.core.faults`).
    """
    global _session
    if _session is not None:
        raise RuntimeError("PMTest already initialized; call PMTest_EXIT first")
    _session = PMTestSession(
        rules,
        workers=workers,
        capture_sites=capture_sites,
        backend=backend,
        batch_size=batch_size,
        transport=transport,
        check_timeout=check_timeout,
        max_retries=max_retries,
        fallback=fallback,
        faults=faults,
    )
    _session.thread_init()
    return _session


def current_session() -> PMTestSession:
    """The installed global session (raises if PMTest_INIT was not called)."""
    if _session is None:
        raise RuntimeError("PMTest_INIT has not been called")
    return _session


def PMTest_EXIT() -> TestResult:
    global _session
    result = current_session().exit()
    _session = None
    return result


def PMTest_THREAD_INIT(name: Optional[str] = None) -> None:
    current_session().thread_init(name)


def PMTest_START() -> None:
    current_session().start()


def PMTest_END() -> None:
    current_session().end()


def PMTest_EXCLUDE(addr: int, size: int) -> None:
    current_session().exclude(addr, size)


def PMTest_INCLUDE(addr: int, size: int) -> None:
    current_session().include(addr, size)


def PMTest_REG_VAR(name: str, addr: int, size: int) -> None:
    current_session().reg_var(name, addr, size)


def PMTest_UNREG_VAR(name: str) -> None:
    current_session().unreg_var(name)


def PMTest_GET_VAR(name: str) -> Tuple[int, int]:
    return current_session().get_var(name)


def PMTest_SEND_TRACE() -> None:
    current_session().send_trace()


def PMTest_GET_RESULT() -> TestResult:
    return current_session().get_result()


def isPersist(addr: int, size: int) -> None:
    current_session().is_persist(addr, size)


def isOrderedBefore(addr_a: int, size_a: int, addr_b: int, size_b: int) -> None:
    current_session().is_ordered_before(addr_a, size_a, addr_b, size_b)


def TX_CHECKER_START() -> None:
    current_session().tx_check_start()


def TX_CHECKER_END() -> None:
    current_session().tx_check_end()
