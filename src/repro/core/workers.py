"""Master/worker checking runtime (paper Section 4.4, Figure 8).

PMTest decouples program execution from checker validation: the program
pushes completed traces (``PMTest_SEND_TRACE``) to a master, the master
dispatches them round-robin to a pool of worker threads, each worker checks
its traces independently against a fresh shadow memory, and results flow
back to a result queue.  ``PMTest_GET_RESULT`` blocks until every trace
submitted so far has been tested.

Traces are independent, so this parallelism is embarrassingly safe.  (In
CPython the GIL limits the *speedup* — see DESIGN.md Section 6 — but the
dispatch architecture, per-worker queues and blocking semantics are
reproduced faithfully, and a ``workers=0`` synchronous mode is provided
for deterministic unit testing.)
"""

from __future__ import annotations

import queue
import threading
from typing import List, Optional

from repro.core.engine import CheckingEngine
from repro.core.events import Trace
from repro.core.reports import TestResult
from repro.core.rules import PersistencyRules

#: Sentinel pushed to a worker's queue to ask it to exit.
_STOP = None


class WorkerPool:
    """Round-robin dispatch of traces to checking worker threads."""

    def __init__(
        self,
        rules: Optional[PersistencyRules] = None,
        num_workers: int = 1,
        name: str = "pmtest",
    ) -> None:
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        self._engine = CheckingEngine(rules)
        self._num_workers = num_workers
        self._queues: List["queue.Queue[Optional[Trace]]"] = []
        self._threads: List[threading.Thread] = []
        self._next_worker = 0
        self._lock = threading.Lock()
        self._result = TestResult()
        self._dispatched = 0
        self._per_worker_counts = [0] * num_workers
        self._closed = False
        for i in range(num_workers):
            q: "queue.Queue[Optional[Trace]]" = queue.Queue()
            self._queues.append(q)
            thread = threading.Thread(
                target=self._worker_loop,
                args=(i, q),
                name=f"{name}-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def synchronous(self) -> bool:
        """Whether traces are checked inline on the submitting thread."""
        return self._num_workers == 0

    @property
    def dispatched(self) -> int:
        return self._dispatched

    def worker_trace_counts(self) -> List[int]:
        """How many traces each worker has been handed (round-robin)."""
        return list(self._per_worker_counts)

    # ------------------------------------------------------------------
    def submit(self, trace: Trace) -> None:
        """Dispatch one trace for checking (non-blocking with workers)."""
        if self._closed:
            raise RuntimeError("worker pool is closed")
        if self.synchronous:
            result = self._engine.check_trace(trace)
            with self._lock:
                self._dispatched += 1
                self._result.merge(result)
            return
        with self._lock:
            index = self._next_worker
            self._next_worker = (index + 1) % self._num_workers
            self._dispatched += 1
            self._per_worker_counts[index] += 1
        self._queues[index].put(trace)

    def drain(self) -> TestResult:
        """Block until all submitted traces are checked; return a snapshot.

        This is ``PMTest_GET_RESULT``: the snapshot aggregates every trace
        checked since the pool was created.
        """
        for q in self._queues:
            q.join()
        with self._lock:
            snapshot = TestResult()
            snapshot.merge(self._result)
            return snapshot

    def close(self) -> TestResult:
        """Drain, stop all workers, and return the final result."""
        final = self.drain()
        if not self._closed:
            self._closed = True
            for q in self._queues:
                q.put(_STOP)
            for thread in self._threads:
                thread.join()
        return final

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _worker_loop(self, index: int, q: "queue.Queue[Optional[Trace]]") -> None:
        while True:
            trace = q.get()
            if trace is _STOP:
                q.task_done()
                return
            try:
                result = self._engine.check_trace(trace)
                with self._lock:
                    self._result.merge(result)
            finally:
                q.task_done()
