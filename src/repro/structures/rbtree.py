"""A red-black tree: the "RB-Tree" microbenchmark.

Modelled on PMDK's ``rbtree_map`` example: a classic CLRS red-black tree
with parent pointers and a persistent NIL sentinel.  Every field write
inside the insert fix-up is preceded by a precise ``TX_ADD`` — except at
the historical bug site:

``rotate-no-log``
    The rotation re-parents the pivot **without logging the field
    first** — the Table 6 known bug (rbtree_map.c:379, "Modify a tree
    node without logging it", fixed in pmem/pmdk@04ec84e2).
``no-log-count``
    The element count is modified without a snapshot (synthetic).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.pmdk.objects import PStruct, PtrField, U64Field
from repro.pmdk.pool import PMPool
from repro.pmem.memory import PMImage
from repro.structures.base import PersistentMap, ValueBuffer

RED = 1
BLACK = 0


class RBRoot(PStruct):
    root = PtrField()
    nil = PtrField()
    count = U64Field()


class RBNode(PStruct):
    key = U64Field()
    value = PtrField()
    color = U64Field()
    left = PtrField()
    right = PtrField()
    parent = PtrField()


class RBTree(PersistentMap):
    """Transactional red-black tree (insert/lookup/remove, as in PMDK's
    rbtree_map example)."""

    NAME = "rbtree"

    KNOWN_FAULTS = frozenset(
        {"rotate-no-log", "no-log-count", "no-log-value", "dup-log-set"}
    )

    def __init__(self, pool: PMPool, root_slot: int = 0, value_size: int = 64,
                 faults=()) -> None:
        super().__init__(pool, root_slot, value_size, faults)
        addr = pool.read_root(root_slot)
        if addr:
            self.meta = RBRoot(pool, addr)
        else:
            with pool.tx.transaction():
                self.meta = RBRoot.alloc(pool)
                nil = RBNode.alloc(pool)
                nil.color = BLACK
                self.meta.nil = nil.addr
                self.meta.root = nil.addr
            pool.write_root(root_slot, self.meta.addr)
        self.nil = self.meta.nil

    # ------------------------------------------------------------------
    # Logged field writes
    # ------------------------------------------------------------------
    def _set(self, node: RBNode, field: str, value: int, log: bool = True) -> None:
        if log:
            self.pool.tx.add_field_once(node, field)
            if self._fault("dup-log-set"):
                self.pool.tx.add_field(node, field)  # redundant snapshot
        setattr(node, field, value)

    def _set_root(self, addr: int) -> None:
        self.pool.tx.add_field_once(self.meta, "root")
        self.meta.root = addr

    # ------------------------------------------------------------------
    def _find(self, key: int) -> Optional[RBNode]:
        cursor = self.meta.root
        while cursor != self.nil:
            node = RBNode(self.pool, cursor)
            if node.key == key:
                return node
            cursor = node.left if key < node.key else node.right
        return None

    def insert(self, key: int, payload: Optional[bytes] = None) -> None:
        payload = payload if payload is not None else self.default_payload(key)
        tx = self.pool.tx
        with tx.transaction():
            buf = ValueBuffer.create(self.pool, payload)
            existing = self._find(key)
            if existing is not None:
                if not self._fault("no-log-value"):
                    tx.add_field(existing, "value")
                existing.value = buf.addr
                return
            node = RBNode.alloc(self.pool)
            node.key = key
            node.value = buf.addr
            node.color = RED
            node.left = self.nil
            node.right = self.nil
            # BST insertion.
            parent_addr = self.nil
            cursor = self.meta.root
            while cursor != self.nil:
                parent_addr = cursor
                current = RBNode(self.pool, cursor)
                cursor = current.left if key < current.key else current.right
            node.parent = parent_addr
            if parent_addr == self.nil:
                self._set_root(node.addr)
            else:
                parent = RBNode(self.pool, parent_addr)
                side = "left" if key < parent.key else "right"
                self._set(parent, side, node.addr)
            self._fixup(node)
            self._bump_count(+1)

    def _fixup(self, node: RBNode) -> None:
        while True:
            parent_addr = node.parent
            if parent_addr == self.nil:
                break
            parent = RBNode(self.pool, parent_addr)
            if parent.color != RED:
                break
            grandparent = RBNode(self.pool, parent.parent)
            if parent.addr == grandparent.left:
                uncle = RBNode(self.pool, grandparent.right)
                if uncle.color == RED:
                    self._set(parent, "color", BLACK)
                    self._set(uncle, "color", BLACK)
                    self._set(grandparent, "color", RED)
                    node = grandparent
                    continue
                if node.addr == parent.right:
                    node = parent
                    self._rotate_left(node)
                    parent = RBNode(self.pool, node.parent)
                    grandparent = RBNode(self.pool, parent.parent)
                self._set(parent, "color", BLACK)
                self._set(grandparent, "color", RED)
                self._rotate_right(grandparent)
            else:
                uncle = RBNode(self.pool, grandparent.left)
                if uncle.color == RED:
                    self._set(parent, "color", BLACK)
                    self._set(uncle, "color", BLACK)
                    self._set(grandparent, "color", RED)
                    node = grandparent
                    continue
                if node.addr == parent.left:
                    node = parent
                    self._rotate_right(node)
                    parent = RBNode(self.pool, node.parent)
                    grandparent = RBNode(self.pool, parent.parent)
                self._set(parent, "color", BLACK)
                self._set(grandparent, "color", RED)
                self._rotate_left(grandparent)
        root = RBNode(self.pool, self.meta.root)
        if root.color != BLACK:
            self._set(root, "color", BLACK)

    def _rotate_left(self, x: RBNode) -> None:
        y = RBNode(self.pool, x.right)
        self._set(x, "right", y.left)
        if y.left != self.nil:
            self._set(RBNode(self.pool, y.left), "parent", x.addr)
        # The historical bug: this re-parenting write is the one the
        # original code issued without a snapshot.
        self._set(y, "parent", x.parent, log=not self._fault("rotate-no-log"))
        if x.parent == self.nil:
            self._set_root(y.addr)
        else:
            parent = RBNode(self.pool, x.parent)
            side = "left" if x.addr == parent.left else "right"
            self._set(parent, side, y.addr)
        self._set(y, "left", x.addr)
        self._set(x, "parent", y.addr)

    def _rotate_right(self, x: RBNode) -> None:
        y = RBNode(self.pool, x.left)
        self._set(x, "left", y.right)
        if y.right != self.nil:
            self._set(RBNode(self.pool, y.right), "parent", x.addr)
        self._set(y, "parent", x.parent, log=not self._fault("rotate-no-log"))
        if x.parent == self.nil:
            self._set_root(y.addr)
        else:
            parent = RBNode(self.pool, x.parent)
            side = "left" if x.addr == parent.left else "right"
            self._set(parent, side, y.addr)
        self._set(y, "right", x.addr)
        self._set(x, "parent", y.addr)

    # ------------------------------------------------------------------
    def lookup(self, key: int) -> Optional[bytes]:
        node = self._find(key)
        if node is None:
            return None
        return ValueBuffer(self.pool, node.value).read()

    # ------------------------------------------------------------------
    # Deletion (CLRS with the persistent NIL sentinel)
    # ------------------------------------------------------------------
    def remove(self, key: int) -> bool:
        tx = self.pool.tx
        with tx.transaction():
            z = self._find(key)
            if z is None:
                return False
            self._delete_node(z)
            self.pool.free(z.addr)
            self._bump_count(-1)
            return True

    def _node(self, addr: int) -> RBNode:
        return RBNode(self.pool, addr)

    def _transplant(self, u: RBNode, v_addr: int) -> None:
        """Replace the subtree rooted at ``u`` with the one at ``v``."""
        if u.parent == self.nil:
            self._set_root(v_addr)
        else:
            parent = self._node(u.parent)
            side = "left" if u.addr == parent.left else "right"
            self._set(parent, side, v_addr)
        # NIL's parent is used as fix-up scratch, exactly as in rbtree_map.
        self._set(self._node(v_addr), "parent", u.parent)

    def _minimum(self, node: RBNode) -> RBNode:
        while node.left != self.nil:
            node = self._node(node.left)
        return node

    def _delete_node(self, z: RBNode) -> None:
        y = z
        y_was_black = y.color == BLACK
        if z.left == self.nil:
            x_addr = z.right
            self._transplant(z, z.right)
        elif z.right == self.nil:
            x_addr = z.left
            self._transplant(z, z.left)
        else:
            y = self._minimum(self._node(z.right))
            y_was_black = y.color == BLACK
            x_addr = y.right
            if y.parent == z.addr:
                self._set(self._node(x_addr), "parent", y.addr)
            else:
                self._transplant(y, y.right)
                self._set(y, "right", z.right)
                self._set(self._node(y.right), "parent", y.addr)
            self._transplant(z, y.addr)
            self._set(y, "left", z.left)
            self._set(self._node(y.left), "parent", y.addr)
            self._set(y, "color", z.color)
        if y_was_black:
            self._delete_fixup(self._node(x_addr))

    def _delete_fixup(self, x: RBNode) -> None:
        while x.addr != self.meta.root and x.color == BLACK:
            parent = self._node(x.parent)
            if x.addr == parent.left:
                w = self._node(parent.right)
                if w.color == RED:
                    self._set(w, "color", BLACK)
                    self._set(parent, "color", RED)
                    self._rotate_left(parent)
                    parent = self._node(x.parent)
                    w = self._node(parent.right)
                if (self._node(w.left).color == BLACK
                        and self._node(w.right).color == BLACK):
                    self._set(w, "color", RED)
                    x = parent
                    continue
                if self._node(w.right).color == BLACK:
                    self._set(self._node(w.left), "color", BLACK)
                    self._set(w, "color", RED)
                    self._rotate_right(w)
                    parent = self._node(x.parent)
                    w = self._node(parent.right)
                self._set(w, "color", parent.color)
                self._set(parent, "color", BLACK)
                self._set(self._node(w.right), "color", BLACK)
                self._rotate_left(parent)
                x = self._node(self.meta.root)
            else:
                w = self._node(parent.left)
                if w.color == RED:
                    self._set(w, "color", BLACK)
                    self._set(parent, "color", RED)
                    self._rotate_right(parent)
                    parent = self._node(x.parent)
                    w = self._node(parent.left)
                if (self._node(w.right).color == BLACK
                        and self._node(w.left).color == BLACK):
                    self._set(w, "color", RED)
                    x = parent
                    continue
                if self._node(w.left).color == BLACK:
                    self._set(self._node(w.right), "color", BLACK)
                    self._set(w, "color", RED)
                    self._rotate_left(w)
                    parent = self._node(x.parent)
                    w = self._node(parent.left)
                self._set(w, "color", parent.color)
                self._set(parent, "color", BLACK)
                self._set(self._node(w.left), "color", BLACK)
                self._rotate_right(parent)
                x = self._node(self.meta.root)
        if x.color != BLACK:
            self._set(x, "color", BLACK)

    def items(self) -> Iterator[Tuple[int, bytes]]:
        def walk(addr: int) -> Iterator[Tuple[int, bytes]]:
            if addr == self.nil:
                return
            node = RBNode(self.pool, addr)
            yield from walk(node.left)
            yield node.key, ValueBuffer(self.pool, node.value).read()
            yield from walk(node.right)

        yield from walk(self.meta.root)

    def _bump_count(self, delta: int) -> None:
        if not self._fault("no-log-count"):
            self.pool.tx.add_field(self.meta, "count")
        self.meta.count = self.meta.count + delta


def validate_image(image: PMImage, root_addr_value: int) -> bool:
    """Crash-image consistency: BST order, no red-red edge, uniform
    black height, consistent parent pointers, count matching."""
    if root_addr_value == 0:
        return True
    root = image.read_u64(root_addr_value)
    nil = image.read_u64(root_addr_value + 8)
    count = image.read_u64(root_addr_value + 16)
    if nil == 0:
        return False
    if root == nil:
        return count == 0

    total = 0
    seen = set()

    def node_fields(addr: int):
        return (
            image.read_u64(addr),  # key
            image.read_u64(addr + 8),  # value
            image.read_u64(addr + 16),  # color
            image.read_u64(addr + 24),  # left
            image.read_u64(addr + 32),  # right
            image.read_u64(addr + 40),  # parent
        )

    def walk(addr: int, lo: int, hi: int, parent_addr: int) -> Optional[int]:
        """Returns the subtree's black height, or None if inconsistent."""
        nonlocal total
        if addr == nil:
            return 1
        if addr in seen or addr + RBNode.SIZE > len(image):
            return None
        seen.add(addr)
        key, value, color, left, right, parent = node_fields(addr)
        if not lo <= key < hi or value == 0 or parent != parent_addr:
            return None
        if color == RED:
            for child in (left, right):
                if child != nil and image.read_u64(child + 16) == RED:
                    return None
        total += 1
        left_height = walk(left, lo, key, addr)
        right_height = walk(right, key + 1, hi, addr)
        if left_height is None or right_height is None:
            return None
        if left_height != right_height:
            return None
        return left_height + (1 if color == BLACK else 0)

    if image.read_u64(root + 16) != BLACK:
        return False
    height = walk(root, 0, 1 << 64, nil)
    return height is not None and total == count
