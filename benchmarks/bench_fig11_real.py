"""Figure 11: PMTest slowdown on the real workloads (paper Table 4).

Paper result: PMTest costs 1.33–1.98x (1.69x average) across
Memcached+Memslap, Memcached+YCSB, Redis+LRU, PMFS+OLTP and
PMFS+Filebench — much lower than on the microbenchmarks because real
workloads touch PM less intensively; Pmemcheck on Redis costs 22.3x
(13.6x more than PMTest).
"""

import pytest

from _harness import REAL_WORKLOADS, pedantic, prepare_real, record, slowdown

TOOLS = ["none", "pmtest"]


@pytest.mark.parametrize("workload", REAL_WORKLOADS)
@pytest.mark.parametrize("tool", TOOLS)
def test_fig11(benchmark, bench_rounds, workload, tool):
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_real(workload, tool, scale=300),
    )
    record("fig11", (workload, tool), benchmark)


def test_fig11_redis_pmemcheck(benchmark, bench_rounds):
    """The paper additionally measures Pmemcheck on the PMDK-based
    workload (Redis): 22.3x there, vs PMTest's ~1.6x."""
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_real("redis+lru", "pmemcheck", scale=300),
    )
    record("fig11", ("redis+lru", "pmemcheck"), benchmark)


def test_fig11_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ratios = {}
    for workload in REAL_WORKLOADS:
        ratio = slowdown("fig11", (workload, "pmtest"), (workload, "none"))
        if ratio is not None:
            ratios[workload] = ratio
    if not ratios:
        pytest.skip("fig11 benchmarks did not run")
    average = sum(ratios.values()) / len(ratios)
    micro_scale_slowdown = 5.0
    # Real workloads are much less PM intensive than the microbenches:
    # the average slowdown stays small (paper: 1.69x).
    assert average < micro_scale_slowdown, ratios
    # Pmemcheck on Redis costs far more than PMTest on Redis.
    pmtest_redis = ratios.get("redis+lru")
    pmc_redis = slowdown("fig11", ("redis+lru", "pmemcheck"),
                         ("redis+lru", "none"))
    if pmtest_redis is not None and pmc_redis is not None:
        assert pmc_redis > 2 * pmtest_redis, (pmtest_redis, pmc_redis)
