"""Lightweight span tracing for the checking pipeline.

Where :mod:`repro.core.metrics` aggregates (how much time went into each
stage overall), tracing preserves *sequence*: a :class:`Tracer` records
named spans with begin/end timestamps and writes them out in the Chrome
trace event format, so a run can be opened in ``chrome://tracing`` (or
Perfetto) and read as a timeline — which trace was being checked while
``drain`` was blocked, how long each backend submit took, and so on.

Spans carry identity: every span gets a 64-bit ``span_id`` and records
the ``parent_id`` it nests under, and a :class:`SpanContext` (trace id
plus span id) is a two-integer value small enough to ride in a protocol
frame.  That is what lets the daemon stitch one timeline across
processes — the client serialises its session span's context into the
``hello`` frame, the server parents its session span under it, and the
worker processes parent their batch spans under the server's, so the
merged export shows one correctly-nested tree spanning three pids.

Design constraints:

* **Explicit clocks and ids.**  The tracer never calls ``time`` or the
  id generator directly except through its injected ``clock`` /
  ``ids`` callables, so tests install deterministic fakes and assert
  exact durations and parent links.
* **Cheap when absent.**  Nothing in the pipeline owns a tracer by
  default; every hook is a ``tracer is not None`` branch.
* **Misuse is loud.**  A span left open when the tracer is finished
  raises :class:`TracingError` in strict mode (tests) and emits a
  ``RuntimeWarning`` otherwise (production keeps going and the partial
  span is still written, with its end clamped to the finish time).

Output format: one JSON object per line, wrapped in a JSON array —
valid JSON for tooling, and still greppable/streamable line by line.
Durations use the Chrome convention (microseconds, ``X`` events).
Span/parent ids are emitted as 16-hex-digit strings in each event's
``args`` (JSON numbers lose precision past 2**53).
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    TextIO,
    Union,
)


class TracingError(Exception):
    """Span misuse: unbalanced begin/end or an unclosed span at finish."""


def _random_id() -> int:
    """Default span/trace id source: a non-zero 64-bit integer."""
    while True:
        value = random.getrandbits(64)
        if value:
            return value


def _hex_id(value: int) -> str:
    return f"{value:016x}"


class SpanContext:
    """The serializable identity of one span: ``(trace_id, span_id)``.

    Small by construction — two unsigned 64-bit integers — so it fits
    in two varints on the PMTB wire (the optional trailing field of the
    daemon's ``hello``/``drain``/``verdict`` frames).  A context is a
    *value*: carrying it across a process boundary and opening child
    spans under it is what links timelines from different pids into one
    tree.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def to_pair(self) -> "tuple[int, int]":
        """The wire form: ``(trace_id, span_id)`` as plain ints."""
        return (self.trace_id, self.span_id)

    @classmethod
    def from_pair(cls, pair: Sequence[int]) -> "SpanContext":
        trace_id, span_id = pair
        return cls(int(trace_id), int(span_id))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SpanContext)
            and other.trace_id == self.trace_id
            and other.span_id == self.span_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanContext(trace_id={_hex_id(self.trace_id)}, "
            f"span_id={_hex_id(self.span_id)})"
        )


class _OpenSpan:
    __slots__ = ("name", "start_ns", "args", "span_id", "parent_id")

    def __init__(
        self,
        name: str,
        start_ns: int,
        args: Dict[str, Any],
        span_id: int,
        parent_id: Optional[int],
    ) -> None:
        self.name = name
        self.start_ns = start_ns
        self.args = args
        self.span_id = span_id
        self.parent_id = parent_id


class SpanHandle:
    """An explicitly-managed span, outside the per-thread nesting stacks.

    ``begin``/``end`` auto-nest per thread, which is right for
    synchronous code but wrong for an asyncio server where many
    sessions interleave on one loop thread.  A handle is the async-safe
    alternative: :meth:`Tracer.start_span` returns one, its
    :attr:`context` can be handed to children immediately, and
    :meth:`finish` emits the completed span whenever the work actually
    ends — no stack involved, so concurrent handles never cross-nest.
    """

    __slots__ = ("_tracer", "_name", "_start_ns", "_args", "_tid",
                 "context", "_done", "_parent_id")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        start_ns: int,
        args: Dict[str, Any],
        tid: int,
        context: SpanContext,
        parent_id: Optional[int],
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._start_ns = start_ns
        self._args = args
        self._tid = tid
        self.context = context
        self._done = False
        self._parent_id = parent_id

    def finish(self, **extra: Any) -> None:
        """Emit the span (idempotent); ``extra`` merges into its args."""
        if self._done:
            return
        self._done = True
        if extra:
            self._args = {**self._args, **extra}
        self._tracer._finish_handle(self)

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.finish()


class Tracer:
    """Collects spans/instants/counter samples; writes Chrome trace JSON.

    Thread-safe: spans opened on different threads nest independently
    (per-thread stacks) and carry their thread id in the output.

    ``root`` (a :class:`SpanContext`) parents every span that has no
    enclosing open span and no explicit ``parent`` — set it to a
    context received over the wire and the whole timeline hangs off the
    remote caller's span.  ``ids`` is the span-id source (default: a
    random non-zero 64-bit int), injectable for deterministic tests.
    """

    def __init__(
        self,
        clock=time.perf_counter_ns,
        strict: bool = False,
        process_name: str = "pmtest",
        root: Optional[SpanContext] = None,
        ids: Callable[[], int] = _random_id,
    ) -> None:
        self._clock = clock
        self._strict = strict
        self._process_name = process_name
        self._lock = threading.Lock()
        self._events: List[dict] = []
        self._stacks: Dict[int, List[_OpenSpan]] = {}
        self._finished = False
        self._epoch_ns = clock()
        self._ids = ids
        self._root = root
        self._trace_id = root.trace_id if root is not None else ids()

    # ------------------------------------------------------------------
    # Span identity
    # ------------------------------------------------------------------
    @property
    def trace_id(self) -> int:
        """The trace id every span of this tracer belongs to."""
        return self._trace_id

    @property
    def root(self) -> Optional[SpanContext]:
        """The cross-process parent this tracer hangs under, if any."""
        return self._root

    def set_root(self, root: Optional[SpanContext]) -> None:
        """Re-parent future parentless spans (and adopt the trace id)."""
        with self._lock:
            self._root = root
            if root is not None:
                self._trace_id = root.trace_id

    def current_context(self) -> Optional[SpanContext]:
        """The innermost open span on this thread, else the root."""
        tid = threading.get_ident()
        with self._lock:
            stack = self._stacks.get(tid)
            if stack:
                return SpanContext(self._trace_id, stack[-1].span_id)
            return self._root

    def _resolve_parent(
        self, tid: int, parent: Optional[SpanContext]
    ) -> Optional[int]:
        """Parent id for a new span (lock held): explicit > stack > root."""
        if parent is not None:
            return parent.span_id
        stack = self._stacks.get(tid)
        if stack:
            return stack[-1].span_id
        if self._root is not None:
            return self._root.span_id
        return None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(
        self, name: str, *, parent: Optional[SpanContext] = None, **args: Any
    ) -> Iterator[None]:
        """``with tracer.span("drain"):`` — a timed, nested span."""
        self.begin(name, parent=parent, **args)
        try:
            yield
        finally:
            self.end(name)

    def begin(
        self, name: str, *, parent: Optional[SpanContext] = None, **args: Any
    ) -> SpanContext:
        """Open a span explicitly (must be closed by :meth:`end`).

        Returns the new span's :class:`SpanContext`, ready to serialise
        to a child process.  ``parent`` overrides the default nesting
        (innermost open span on this thread, else the tracer root).
        """
        tid = threading.get_ident()
        start = self._clock()
        with self._lock:
            self._check_not_finished()
            span_id = self._ids()
            parent_id = self._resolve_parent(tid, parent)
            self._stacks.setdefault(tid, []).append(
                _OpenSpan(name, start, args, span_id, parent_id)
            )
            return SpanContext(self._trace_id, span_id)

    def end(self, name: Optional[str] = None) -> None:
        """Close the innermost open span on the calling thread.

        With ``name`` given, the innermost span must carry that name —
        mismatches raise :class:`TracingError` in strict mode and warn
        otherwise (the span is closed anyway so the timeline stays
        parseable).
        """
        tid = threading.get_ident()
        now = self._clock()
        with self._lock:
            stack = self._stacks.get(tid)
            if not stack:
                self._misuse(f"end({name!r}) with no open span")
                return
            span = stack.pop()
            if name is not None and span.name != name:
                self._misuse(
                    f"end({name!r}) closes span {span.name!r} "
                    f"(unbalanced nesting)"
                )
            self._emit_complete(span, now, tid)

    def start_span(
        self, name: str, *, parent: Optional[SpanContext] = None, **args: Any
    ) -> SpanHandle:
        """Open a stackless span (see :class:`SpanHandle`).

        Safe to hold across awaits and interleave with other handles:
        nothing is pushed on the per-thread stacks, so ``finish`` order
        is free and plain ``begin``/``end`` nesting is unaffected.
        """
        tid = threading.get_ident()
        start = self._clock()
        with self._lock:
            self._check_not_finished()
            span_id = self._ids()
            parent_id = (
                parent.span_id if parent is not None
                else (self._root.span_id if self._root is not None else None)
            )
            return SpanHandle(
                self, name, start, dict(args), tid,
                SpanContext(self._trace_id, span_id), parent_id,
            )

    def _finish_handle(self, handle: SpanHandle) -> None:
        now = self._clock()
        with self._lock:
            if self._finished:
                return  # tracer already flushed; drop silently
            span = _OpenSpan(
                handle._name, handle._start_ns, handle._args,
                handle.context.span_id, handle._parent_id,
            )
            self._emit_complete(span, now, handle._tid)

    def instant(self, name: str, **args: Any) -> None:
        """A zero-duration marker (worker respawned, backend degraded)."""
        now = self._clock()
        with self._lock:
            self._check_not_finished()
            event = self._base_event("i", name, now, threading.get_ident())
            event["s"] = "t"  # thread-scoped marker
            if args:
                event["args"] = args
            self._events.append(event)

    def counter(self, name: str, **values: Union[int, float]) -> None:
        """A counter sample (queue depth over time renders as a graph)."""
        now = self._clock()
        with self._lock:
            self._check_not_finished()
            event = self._base_event("C", name, now, threading.get_ident())
            event["args"] = dict(values)
            self._events.append(event)

    def absorb_events(self, events: Iterable[dict]) -> None:
        """Adopt pre-rendered Chrome events from another process.

        The process backend ships its workers' span events back (each
        already carrying the worker's own ``pid`` and timestamps); the
        pool-side tracer folds them in verbatim so one ``write`` emits
        the whole multi-process timeline.
        """
        batch = [dict(event) for event in events]
        with self._lock:
            self._check_not_finished()
            self._events.extend(batch)

    def drain_events(self) -> List[dict]:
        """Remove and return everything recorded so far (delta shipping).

        The worker-process side of :meth:`absorb_events`: a worker
        drains its tracer after each result message so span events are
        shipped exactly once.
        """
        with self._lock:
            events, self._events = self._events, []
            return events

    # ------------------------------------------------------------------
    # Introspection / output
    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> int:
        with self._lock:
            return sum(len(stack) for stack in self._stacks.values())

    def events(self) -> List[dict]:
        with self._lock:
            return list(self._events)

    def finish(self) -> None:
        """Close the tracer; unclosed spans raise (strict) or warn.

        Idempotent.  Leaked spans are force-closed at the finish
        timestamp so the written timeline still contains them.
        """
        now = self._clock()
        with self._lock:
            if self._finished:
                return
            leaked = [
                (tid, span)
                for tid, stack in self._stacks.items()
                for span in stack
            ]
            for tid, span in leaked:
                self._emit_complete(span, now, tid)
            self._stacks.clear()
            self._finished = True
        if leaked:
            names = ", ".join(repr(span.name) for _, span in leaked)
            self._misuse(f"{len(leaked)} span(s) never closed: {names}")

    def write(self, destination: Union[str, Path, TextIO]) -> int:
        """Write the Chrome trace (finishing first); returns event count."""
        self.finish()
        if isinstance(destination, (str, Path)):
            with open(destination, "w", encoding="utf-8") as handle:
                return self.write(handle)
        with self._lock:
            events = list(self._events)
        meta = self._base_event("M", "process_name", self._epoch_ns, 0)
        meta["args"] = {"name": self._process_name}
        ctx = self._base_event("M", "trace_context", self._epoch_ns, 0)
        ctx["args"] = {"trace_id": _hex_id(self._trace_id)}
        lines = [json.dumps(meta), json.dumps(ctx)] + [
            json.dumps(e) for e in events
        ]
        destination.write("[\n" + ",\n".join(lines) + "\n]\n")
        return len(events)

    # ------------------------------------------------------------------
    # Internals (all called with the lock held except _misuse)
    # ------------------------------------------------------------------
    def _base_event(self, phase: str, name: str, ts_ns: int, tid: int) -> dict:
        return {
            "ph": phase,
            "name": name,
            "pid": os.getpid(),
            "tid": tid,
            "ts": (ts_ns - self._epoch_ns) / 1000.0,
        }

    def _emit_complete(self, span: _OpenSpan, end_ns: int, tid: int) -> None:
        event = self._base_event("X", span.name, span.start_ns, tid)
        event["dur"] = (end_ns - span.start_ns) / 1000.0
        # The tracer-level trace id lives in the write() metadata event;
        # per-span args must not shadow workload keys (spans already
        # carry a PM ``trace_id`` arg naming the trace being checked).
        args = dict(span.args)
        args["span_id"] = _hex_id(span.span_id)
        if span.parent_id is not None:
            args["parent_id"] = _hex_id(span.parent_id)
        event["args"] = args
        self._events.append(event)

    def _check_not_finished(self) -> None:
        if self._finished:
            raise TracingError("tracer already finished")

    def _misuse(self, message: str) -> None:
        if self._strict:
            raise TracingError(message)
        warnings.warn(f"pmtest tracing: {message}", RuntimeWarning,
                      stacklevel=3)


# ----------------------------------------------------------------------
# Multi-process timeline merging
# ----------------------------------------------------------------------
def merge_trace_files(
    inputs: Iterable[Union[str, Path]],
    destination: Union[str, Path, TextIO],
) -> int:
    """Concatenate Chrome trace files into one timeline; returns events.

    Each input was written by one process's :meth:`Tracer.write`, so
    events already carry distinct ``pid`` values and their span/parent
    ids link across files.  Timestamps stay relative to each writer's
    own epoch — chrome://tracing renders the processes as parallel
    tracks and the parent links (``args.parent_id``) carry the
    cross-process structure.
    """
    events: List[dict] = []
    for path in inputs:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, list):
            raise ValueError(f"{path}: not a Chrome trace event array")
        events.extend(payload)
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            return _write_merged(events, handle)
    return _write_merged(events, destination)


def _write_merged(events: List[dict], destination: TextIO) -> int:
    lines = [json.dumps(e) for e in events]
    destination.write("[\n" + ",\n".join(lines) + "\n]\n")
    return len(events)


def span_tree(events: Iterable[dict]) -> Dict[str, Optional[str]]:
    """``{span_id: parent_id}`` for every complete span in ``events``.

    The assertion helper for cross-process exports: after merging, a
    child's ``parent_id`` must be a key of this mapping for the link to
    resolve inside the merged timeline.
    """
    tree: Dict[str, Optional[str]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        args = event.get("args") or {}
        span_id = args.get("span_id")
        if span_id is not None:
            tree[span_id] = args.get("parent_id")
    return tree
