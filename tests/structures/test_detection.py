"""PMTest detection tests: clean structures pass, every fault is caught.

This is the heart of the paper's Table 5/6 claim at the structure level:
running each microbenchmark under PMTest with its transaction (or
low-level) checkers yields no reports when the code is correct and the
expected FAIL/WARN class when a specific bug is injected.
"""

import pytest

from repro.core.reports import ReportCode
from repro.pmdk.pool import PMPool
from repro.instr.runtime import PMRuntime
from repro.pmem.machine import PMMachine
from repro.structures import ALL_STRUCTURES
from tests.structures.conftest import make_session

#: fault -> report codes at least one of which must appear
EXPECTED_CODES = {
    ("ctree", "no-log-splice"): {ReportCode.MISSING_LOG},
    ("ctree", "no-log-count"): {ReportCode.MISSING_LOG},
    ("ctree", "no-log-value"): {ReportCode.MISSING_LOG},
    ("ctree", "dup-log-splice"): {ReportCode.DUP_LOG},
    ("btree", "split-no-log"): {ReportCode.MISSING_LOG},
    ("btree", "rotate-dup-log"): {ReportCode.DUP_LOG},
    ("btree", "no-log-count"): {ReportCode.MISSING_LOG},
    ("btree", "replace-no-log"): {ReportCode.MISSING_LOG},
    ("rbtree", "rotate-no-log"): {ReportCode.MISSING_LOG},
    ("rbtree", "no-log-count"): {ReportCode.MISSING_LOG},
    ("rbtree", "no-log-value"): {ReportCode.MISSING_LOG},
    ("rbtree", "dup-log-set"): {ReportCode.DUP_LOG},
    ("hashmap_tx", "no-log-head"): {ReportCode.MISSING_LOG},
    ("hashmap_tx", "no-log-count"): {ReportCode.MISSING_LOG},
    ("hashmap_tx", "no-log-value"): {ReportCode.MISSING_LOG},
    ("hashmap_tx", "no-log-prev"): {ReportCode.MISSING_LOG},
    ("hashmap_tx", "dup-log-head"): {ReportCode.DUP_LOG},
    ("hashmap_tx", "skip-commit"): {ReportCode.INCOMPLETE_TX},
    ("hashmap_atomic", "no-entry-persist"): {ReportCode.NOT_ORDERED},
    ("hashmap_atomic", "no-publish-fence"): {ReportCode.NOT_ORDERED},
    ("hashmap_atomic", "count-no-flush"): {ReportCode.NOT_PERSISTED},
    ("hashmap_atomic", "double-flush-head"): {ReportCode.DUP_FLUSH},
    ("hashmap_atomic", "double-flush-entry"): {ReportCode.DUP_FLUSH},
}


def run_workload(name, faults=(), inserts=50, removes=True):
    """Run a checked insert/remove workload; return the TestResult."""
    session = make_session()
    machine = PMMachine(16 << 20)
    runtime = PMRuntime(machine=machine, session=session)
    pool = PMPool(runtime, log_capacity=512 * 1024)
    structure = ALL_STRUCTURES[name](pool, value_size=32, faults=faults)
    session.send_trace()
    transactional = name != "hashmap_atomic"
    for i in range(inserts):
        if transactional:
            session.tx_check_start()
        structure.insert((i * 13) % 40)
        if transactional:
            session.tx_check_end()
        session.send_trace()
    if removes and name in ("ctree", "btree", "rbtree", "hashmap_tx"):
        for i in range(0, inserts, 2):
            if transactional:
                session.tx_check_start()
            structure.remove((i * 13) % 40)
            if transactional:
                session.tx_check_end()
            session.send_trace()
    return session.exit()


@pytest.mark.parametrize("name", sorted(ALL_STRUCTURES))
def test_clean_structure_produces_no_reports(name):
    result = run_workload(name)
    assert result.clean, [str(r) for r in result.reports[:5]]


@pytest.mark.parametrize("name,fault", sorted(EXPECTED_CODES))
def test_fault_detected_with_expected_code(name, fault):
    result = run_workload(name, faults=(fault,))
    found = set(result.codes())
    assert found & EXPECTED_CODES[(name, fault)], (
        f"{name}/{fault}: expected one of "
        f"{EXPECTED_CODES[(name, fault)]}, got {found or 'nothing'}"
    )


@pytest.mark.parametrize("name", sorted(ALL_STRUCTURES))
def test_every_known_fault_has_expectation(name):
    """Guard: any new fault added to a structure must be covered here."""
    for fault in ALL_STRUCTURES[name].KNOWN_FAULTS:
        assert (name, fault) in EXPECTED_CODES


def test_fault_reports_point_at_structure_source():
    """With site capture on, the missing-log FAIL names the structure
    module and line that performed the unlogged write."""
    session = make_session()
    session.capture_sites = True
    machine = PMMachine(16 << 20)
    runtime = PMRuntime(machine=machine, session=session, capture_sites=True)
    pool = PMPool(runtime, log_capacity=512 * 1024)
    structure = ALL_STRUCTURES["ctree"](pool, faults=("no-log-splice",))
    session.tx_check_start()
    structure.insert(1)
    structure.insert(2)
    session.tx_check_end()
    result = session.exit()
    missing = [r for r in result.reports if r.code is ReportCode.MISSING_LOG]
    assert missing
    assert any(r.site and r.site.file.endswith("ctree.py") for r in missing)
