"""Kernel-to-user trace plumbing (paper Figure 9b).

A kernel module cannot host the checking engine, so PMTest routes its
traces through a bounded kernel FIFO (``/proc/PMTest``) to the
user-space workers.  :class:`KernelBridge` is that channel: it exposes
the same sink protocol as :class:`~repro.core.workers.WorkerPool`
(``submit``/``drain``/``close``/``dispatched``), so a
:class:`~repro.core.api.PMTestSession` can be pointed at it via its
``sink`` parameter.  A consumer thread plays the user-space daemon,
popping traces from the FIFO and dispatching them to the pool.

Backpressure is end to end: if checking falls behind, the FIFO fills
and the "kernel" thread parks on the interruptible wait queue until the
consumer drains the FIFO below half capacity.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.core.events import Trace
from repro.core.kfifo import DEFAULT_CAPACITY, FifoClosed, KernelFifo
from repro.core.reports import TestResult
from repro.core.rules import PersistencyRules
from repro.core.workers import DEFAULT_BATCH_SIZE, WorkerPool


class KernelBridge:
    """A trace sink that crosses a simulated kernel/user boundary."""

    def __init__(
        self,
        rules: Optional[PersistencyRules] = None,
        num_workers: int = 1,
        fifo_capacity: int = DEFAULT_CAPACITY,
        backend: Optional[str] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        self.fifo: KernelFifo[Trace] = KernelFifo(fifo_capacity)
        self.pool = WorkerPool(
            rules,
            num_workers=max(num_workers, 0),
            backend=backend,
            batch_size=batch_size,
        )
        self._submitted = 0
        self._lock = threading.Lock()
        self._consumer = threading.Thread(
            target=self._consume, name="pmtest-kernel-consumer", daemon=True
        )
        self._consumer.start()

    # ------------------------------------------------------------------
    # The sink protocol used by PMTestSession
    # ------------------------------------------------------------------
    @property
    def dispatched(self) -> int:
        with self._lock:
            return self._submitted

    def submit(self, trace: Trace) -> None:
        """Kernel side: push a trace, blocking on FIFO backpressure."""
        self.fifo.put(trace)
        with self._lock:
            self._submitted += 1

    def drain(self) -> TestResult:
        """Block until every submitted trace crossed the FIFO and was
        checked; return the aggregate result."""
        while True:
            with self._lock:
                submitted = self._submitted
            if self.pool.dispatched >= submitted:
                break
            time.sleep(0.0005)
        return self.pool.drain()

    def close(self) -> TestResult:
        result = self.drain()
        self.fifo.close()
        self._consumer.join(timeout=5)
        return self.pool.close()

    # ------------------------------------------------------------------
    def _consume(self) -> None:
        """The user-space daemon: FIFO -> worker pool."""
        while True:
            try:
                trace = self.fifo.get()
            except FifoClosed:
                return
            self.pool.submit(trace)
