"""Common interface for the persistent map structures.

Each structure is rooted in a pool root slot (so it can be re-discovered
after a crash), maps u64 keys to byte payloads, and accepts a set of
named faults that recreate specific crash-consistency or performance
bugs at the structure's historically buggy code sites.

The ``value_size`` parameter is the paper's "transaction size" axis
(Figure 10): every insert writes a payload buffer of that many bytes
inside the operation, so sweeping it sweeps the PM work per transaction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.pmdk.objects import PStruct, U64Field
from repro.pmdk.pool import PMPool


class StructureError(Exception):
    """Invalid operation on a persistent structure."""


class ValueBuffer(PStruct):
    """A variable-size payload buffer: header + inline bytes."""

    length = U64Field()

    @classmethod
    def create(cls, pool: PMPool, payload: bytes) -> "ValueBuffer":
        addr = pool.alloc(cls.SIZE + max(len(payload), 1))
        buf = cls(pool, addr)
        buf.length = len(payload)
        if payload:
            pool.runtime.store(addr + cls.SIZE, payload)
        return buf

    def read(self) -> bytes:
        length = self.length
        if length == 0:
            return b""
        return self.pool.runtime.load(self.addr + self.SIZE, length)

    def payload_range(self) -> Tuple[int, int]:
        return self.addr, self.SIZE + max(self.length, 1)


class PersistentMap(ABC):
    """A crash-consistent u64 -> bytes map rooted in a pool root slot."""

    #: short name used by benchmarks and the bug registry
    NAME: str = "abstract"

    #: fault names this structure understands
    KNOWN_FAULTS: FrozenSet[str] = frozenset()

    def __init__(
        self,
        pool: PMPool,
        root_slot: int = 0,
        value_size: int = 64,
        faults: Iterable[str] = (),
    ) -> None:
        faults = frozenset(faults)
        unknown = faults - self.KNOWN_FAULTS
        if unknown:
            raise ValueError(
                f"{type(self).__name__} does not define faults {sorted(unknown)}"
            )
        self.pool = pool
        self.root_slot = root_slot
        self.value_size = value_size
        self.faults = faults

    # ------------------------------------------------------------------
    @abstractmethod
    def insert(self, key: int, payload: Optional[bytes] = None) -> None:
        """Insert or update ``key``.  ``payload`` defaults to
        ``value_size`` bytes derived from the key."""

    @abstractmethod
    def lookup(self, key: int) -> Optional[bytes]:
        """Return the payload stored for ``key``, or ``None``."""

    @abstractmethod
    def items(self) -> Iterator[Tuple[int, bytes]]:
        """All ``(key, payload)`` pairs (order unspecified)."""

    def remove(self, key: int) -> bool:
        """Delete ``key``; returns whether it was present.  Structures
        without a delete path raise :class:`NotImplementedError`."""
        raise NotImplementedError(f"{self.NAME} does not implement remove")

    # ------------------------------------------------------------------
    def default_payload(self, key: int) -> bytes:
        """Deterministic payload of ``value_size`` bytes for a key."""
        seed = key.to_bytes(8, "little")
        reps = (self.value_size + 7) // 8
        return (seed * reps)[: self.value_size]

    def __contains__(self, key: int) -> bool:
        return self.lookup(key) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    # ------------------------------------------------------------------
    def _fault(self, name: str) -> bool:
        """Whether a named fault is being injected at a bug site."""
        return name in self.faults
