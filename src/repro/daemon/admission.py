"""Admission control for the checking daemon.

Overload policy is an explicit three-rung ladder, applied per trace
frame *before* any decode work is spent on it:

rung 0 — **queue**
    Wait (bounded by ``queue_timeout``) for the per-tenant token bucket
    and the global inflight-bytes budget.  While a session waits here
    its socket is not being read, so TCP flow control pushes the stall
    back into the client — bounded memory by construction.
rung 1 — **shed**
    Drop the frame and tell the client when to resend (a ``shed`` frame
    carrying a retry-after hint that grows exponentially with
    consecutive sheds, base ``Resilience.backoff_base``).  Nothing was
    decoded, so shedding is cheap and verdict-neutral: the client
    resends the identical frame.
rung 2 — **reject**
    After ``max_sheds`` consecutive sheds the session is told to go
    away (``error`` frame, connection closed).  The client surfaces
    :class:`~repro.daemon.client.DaemonOverloaded`.

The ladder reuses the library's :class:`~repro.core.faults.Resilience`
policy — ``backoff_base`` drives the retry-after growth and
``fallback=False`` disables rung 1 entirely (an operator who would
rather fail fast than degrade) — and every shed/reject is recorded as a
typed :class:`~repro.core.recovery.RecoveryEvent`, same as the worker
pool's own recovery machinery.

All state is event-loop-confined: the server acquires and releases on
the loop thread only, so there are no locks to get wrong.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.faults import (
    DEFAULT_RESILIENCE,
    FaultKind,
    FaultPlan,
    FaultPoint,
    Resilience,
)
from repro.core.metrics import MetricsRegistry
from repro.core.recovery import RecoveryEvent


@dataclass(frozen=True)
class AdmissionPolicy:
    """Tuning knobs for the admission ladder.

    ``tenant_rate_bytes`` is the per-tenant sustained budget in bytes of
    framed traces per second (``None``: unlimited); ``tenant_burst_bytes``
    the bucket capacity (default ``2 * rate``).  ``max_inflight_bytes``
    bounds the frame bytes admitted but not yet checked across *all*
    sessions — the daemon's RSS guardrail.  ``checkpoint_bytes`` is how
    many admitted bytes a session may accumulate before the server runs
    an intermediate drain to release them (drains are cumulative, so
    checkpoints never change the final verdict).
    """

    max_sessions: int = 64
    max_inflight_bytes: int = 32 * 1024 * 1024
    tenant_rate_bytes: Optional[int] = None
    tenant_burst_bytes: Optional[int] = None
    queue_timeout: float = 0.5
    retry_after_ms: int = 50
    max_retry_after_ms: int = 5_000
    max_sheds: int = 8
    checkpoint_bytes: int = 1024 * 1024


#: What the ladder decided for one frame.
@dataclass(frozen=True)
class Decision:
    action: str  # "admit" | "shed" | "reject"
    retry_after_ms: int = 0
    reason: str = ""

    @property
    def admitted(self) -> bool:
        return self.action == "admit"


class TokenBucket:
    """A byte-based token bucket with debt semantics.

    ``try_take(n)`` grants whenever the bucket is positive, letting the
    balance go negative — a frame larger than the burst is admitted
    once and then paid back, so oversized-but-legal frames never
    starve.  When not granted it returns the seconds until the balance
    turns positive again, which is exactly the retry-after hint the
    shed rung wants.  The clock is injectable for deterministic tests.
    """

    __slots__ = ("rate", "burst", "_tokens", "_clock", "_last")

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("token bucket rate must be > 0")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else 2.0 * self.rate
        self._tokens = self.burst
        self._clock = clock
        self._last = clock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._last = now

    def try_take(self, n: int) -> float:
        """Grant ``n`` tokens (returns 0.0) or the seconds to wait."""
        self._refill(self._clock())
        if self._tokens > 0:
            self._tokens -= n
            return 0.0
        return -self._tokens / self.rate

    @property
    def tokens(self) -> float:
        """Current balance (may be negative: debt from a large frame)."""
        self._refill(self._clock())
        return self._tokens


class InflightBudget:
    """The global admitted-but-unchecked byte budget.

    Loop-confined: ``acquire`` may only be awaited from the event loop
    that created the internal condition, and ``release`` must be called
    from the same loop.  A request larger than the whole limit is
    granted only when nothing else is inflight (debt semantics again),
    so one legal oversized frame cannot deadlock the daemon.
    """

    def __init__(self, limit: int) -> None:
        if limit <= 0:
            raise ValueError("inflight budget must be > 0 bytes")
        self.limit = limit
        self.used = 0
        self._cond: Optional[asyncio.Condition] = None

    def _condition(self) -> asyncio.Condition:
        if self._cond is None:
            self._cond = asyncio.Condition()
        return self._cond

    def _fits(self, n: int) -> bool:
        if n > self.limit:
            return self.used == 0
        return self.used + n <= self.limit

    def try_acquire(self, n: int) -> bool:
        if self._fits(n):
            self.used += n
            return True
        return False

    async def acquire(self, n: int, timeout: float) -> bool:
        """Rung 0: wait up to ``timeout`` seconds for budget."""
        if self.try_acquire(n):
            return True
        cond = self._condition()
        try:
            async with cond:
                await asyncio.wait_for(
                    cond.wait_for(lambda: self._fits(n)), timeout
                )
                # Still under the condition lock: the predicate check
                # and the reservation are atomic with respect to other
                # waiters, so concurrent wake-ups cannot over-admit.
                self.used += n
        except asyncio.TimeoutError:
            return False
        return True

    def release(self, n: int) -> None:
        self.used = max(0, self.used - n)
        cond = self._cond
        if cond is not None:
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:
                return  # no loop, so no waiters to wake
            loop.create_task(self._notify(cond))

    async def _notify(self, cond: asyncio.Condition) -> None:
        async with cond:
            cond.notify_all()


class AdmissionController:
    """The ladder itself, shared by every session of one server."""

    def __init__(
        self,
        policy: Optional[AdmissionPolicy] = None,
        resilience: Resilience = DEFAULT_RESILIENCE,
        faults: Optional[FaultPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or AdmissionPolicy()
        self.resilience = resilience
        self._faults = faults
        self._metrics = metrics
        self._clock = clock
        self.budget = InflightBudget(self.policy.max_inflight_bytes)
        self._buckets: Dict[str, TokenBucket] = {}
        #: consecutive sheds per live session (reset on every admit)
        self._sheds: Dict[int, int] = {}
        self._sessions = 0
        self.events: List[RecoveryEvent] = []
        # Plain counters, so tests and the CLI summary never depend on
        # the metrics level.
        self.frames_admitted = 0
        self.bytes_admitted = 0
        self.frames_shed = 0
        self.bytes_shed = 0
        self.sessions_rejected = 0
        #: per-tenant plain counters (same always-on discipline as the
        #: globals above); the telemetry plane's label source
        self.tenant_stats: Dict[str, Dict[str, int]] = {}

    def _tenant(self, tenant: str) -> Dict[str, int]:
        stats = self.tenant_stats.get(tenant)
        if stats is None:
            stats = self.tenant_stats[tenant] = {
                "frames_admitted": 0,
                "bytes_admitted": 0,
                "frames_shed": 0,
                "bytes_shed": 0,
                "sessions_rejected": 0,
            }
        return stats

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def admit_session(self, tenant: str) -> Optional[str]:
        """``None`` to accept, else the rejection reason."""
        if self._sessions >= self.policy.max_sessions:
            reason = (
                f"session limit reached "
                f"({self._sessions}/{self.policy.max_sessions})"
            )
            self.reject_session(tenant, reason)
            return reason
        return None

    def session_opened(self, session_id: int) -> None:
        self._sessions += 1
        self._sheds[session_id] = 0

    def session_closed(self, session_id: int) -> None:
        self._sessions = max(0, self._sessions - 1)
        self._sheds.pop(session_id, None)

    def reject_session(self, tenant: str, reason: str) -> None:
        self.sessions_rejected += 1
        self._tenant(tenant)["sessions_rejected"] += 1
        self.events.append(RecoveryEvent.session_rejected(tenant, reason))
        if self._metrics is not None:
            self._metrics.counter("daemon.sessions_rejected").inc(1)

    # ------------------------------------------------------------------
    # Per-frame ladder
    # ------------------------------------------------------------------
    def _bucket(self, tenant: str) -> Optional[TokenBucket]:
        rate = self.policy.tenant_rate_bytes
        if rate is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                rate, self.policy.tenant_burst_bytes, clock=self._clock
            )
        return bucket

    def _retry_after_ms(self, session_id: int, hint_s: float) -> int:
        """Exponential retry-after: policy base, Resilience-style growth."""
        sheds = self._sheds.get(session_id, 0)
        backoff = self.policy.retry_after_ms * (2 ** min(sheds, 10))
        hinted = int(hint_s * 1000) + 1 if hint_s > 0 else 0
        return min(max(backoff, hinted), self.policy.max_retry_after_ms)

    async def admit_frame(
        self, session_id: int, tenant: str, nbytes: int
    ) -> Decision:
        """Run one trace frame of ``nbytes`` up the ladder."""
        forced = None
        if self._faults is not None:
            rule = self._faults.fire(FaultPoint.DAEMON_SHED)
            if rule is not None:
                if rule.kind in (FaultKind.SLOW, FaultKind.STALL):
                    await asyncio.sleep(rule.delay)
                elif rule.kind is FaultKind.FAIL:
                    forced = "chaos: forced shed"
        reason = forced
        hint_s = 0.0
        bucket_charged: Optional[TokenBucket] = None
        if reason is None:
            bucket = self._bucket(tenant)
            if bucket is not None:
                hint_s = bucket.try_take(nbytes)
                if hint_s > 0:
                    reason = f"tenant {tenant!r} over byte rate"
                else:
                    bucket_charged = bucket
        if reason is None:
            if not self.resilience.fallback:
                # fallback off: no shed rung, straight to reject when
                # the budget cannot be taken immediately.
                if not self.budget.try_acquire(nbytes):
                    reason = (
                        f"inflight budget exhausted "
                        f"({self.budget.used}/{self.budget.limit} bytes) "
                        f"and degradation is disabled"
                    )
                    self.reject_session(tenant, reason)
                    return Decision("reject", reason=reason)
            elif not await self.budget.acquire(
                nbytes, self.policy.queue_timeout
            ):
                reason = (
                    f"inflight budget exhausted "
                    f"({self.budget.used}/{self.budget.limit} bytes)"
                )
                if bucket_charged is not None:
                    # The retried frame will be charged again; refund so
                    # budget sheds do not compound into rate sheds.
                    bucket_charged._tokens += nbytes
        if reason is None:
            self._sheds[session_id] = 0
            self.frames_admitted += 1
            self.bytes_admitted += nbytes
            stats = self._tenant(tenant)
            stats["frames_admitted"] += 1
            stats["bytes_admitted"] += nbytes
            if self._metrics is not None:
                counter = self._metrics.counter
                counter("daemon.frames_admitted").inc(1)
                counter("daemon.bytes_admitted").inc(nbytes)
                self._metrics.gauge("daemon.inflight_bytes").observe(
                    self.budget.used
                )
            return Decision("admit")
        sheds = self._sheds.get(session_id, 0) + 1
        self._sheds[session_id] = sheds
        if sheds > self.policy.max_sheds:
            reason = (
                f"{sheds - 1} consecutive sheds exceeded the "
                f"{self.policy.max_sheds}-shed budget ({reason})"
            )
            self.reject_session(tenant, reason)
            return Decision("reject", reason=reason)
        retry_after_ms = self._retry_after_ms(session_id, hint_s)
        self.frames_shed += 1
        self.bytes_shed += nbytes
        stats = self._tenant(tenant)
        stats["frames_shed"] += 1
        stats["bytes_shed"] += nbytes
        self.events.append(
            RecoveryEvent.shed(
                session_id, tenant, nbytes, retry_after_ms, reason
            )
        )
        if self._metrics is not None:
            counter = self._metrics.counter
            counter("daemon.frames_shed").inc(1)
            counter("daemon.bytes_shed").inc(nbytes)
        return Decision("shed", retry_after_ms=retry_after_ms, reason=reason)

    def release(self, nbytes: int) -> None:
        """Return checked bytes to the global budget."""
        if nbytes:
            self.budget.release(nbytes)
