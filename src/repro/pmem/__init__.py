"""Simulated persistent-memory hardware substrate.

The paper runs on battery-backed NVDIMMs; a Python process cannot observe
real cacheline write-backs, so this package simulates the PM system:

``layout``
    Cacheline geometry helpers (64-byte lines, as on the paper's Skylake).
``memory``
    A byte-addressable PM image with typed accessors.
``machine``
    The execution substrate: stores land in a volatile domain, flushes
    and fences move them toward persistence, and every store's
    persistence state (pending / flush-in-flight / durable) is tracked at
    cacheline granularity.
``crash``
    Exhaustive or sampled enumeration of the PM images reachable if the
    machine crashed *now* — the ground truth that the paper's Yat
    baseline explores and that our property tests validate PMTest
    against.

The simulation is deliberately *adversarial-friendly*: it tracks exactly
which reorderings the x86 persistency model permits (per-line program
order is preserved; unflushed lines may persist at any time via cache
eviction; flushed-and-fenced data is durable), so "did the programmer get
lucky" questions can be answered by enumeration.
"""

from repro.pmem.crash import CrashEnumerator
from repro.pmem.layout import CACHELINE, line_index, line_span
from repro.pmem.machine import MachineStats, PMMachine
from repro.pmem.memory import PMImage

__all__ = [
    "CACHELINE",
    "CrashEnumerator",
    "MachineStats",
    "PMImage",
    "PMMachine",
    "line_index",
    "line_span",
]
