"""Figure 10-style ablation: cross-trace verdict cache on repeated traces.

The paper's microbenchmarks repeat one insert skeleton thousands of
times over fresh allocations; every trace is the same replay up to a
per-segment address shift.  The canonical-form verdict cache
(DESIGN.md Section 9) answers every repeat from a fingerprint lookup
plus report relocation instead of a shadow-memory replay.  This
ablation measures exactly that: identical transactional traces at
distinct bases, checked with the cache off and on, plus the cache's
own hit-rate accounting.
"""

import os

import pytest

from _harness import (
    RESULTS,
    VERDICT_CACHE,
    pedantic,
    prepare_verdict_cache,
    record,
)

#: cache capacity per config; the workload has a single fingerprint, so
#: any capacity >= 1 behaves identically — 64 is the CLI-realistic knob
CONFIGS = {"cache-off": 0, "cache-on": 64}


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_fig10c_verdict_cache(benchmark, bench_rounds, config):
    """Checking throughput over the repeated-trace workload."""
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_verdict_cache(CONFIGS[config]),
    )
    record("fig10c", (config,), benchmark)


def test_fig10c_cache_shape(benchmark):
    """The tentpole claim: on a repeated-trace workload the verdict
    cache serves >= 90% of traces from fingerprint lookups and checking
    runs >= 3x faster than a full replay (relaxed on smoke runs, where
    tiny trace counts leave the timings noise-dominated)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    off = RESULTS.get(("fig10c", ("cache-off",)))
    on = RESULTS.get(("fig10c", ("cache-on",)))
    if off is None or on is None:
        pytest.skip("fig10c benchmarks did not run")
    hit_rate = VERDICT_CACHE.get("hit_rate")
    assert hit_rate is not None and hit_rate >= 0.9, hit_rate
    # The epilogue's dead header write must actually be coalesced.
    assert VERDICT_CACHE.get("writes_merged", 0) > 0, VERDICT_CACHE
    speedup = off / on
    floor = 1.2 if os.environ.get("PMTEST_BENCH_SMOKE") else 3.0
    assert speedup >= floor, (speedup, floor)
