"""A persistent string-keyed map on the Mnemosyne raw word log.

This is the persistent state behind the Memcached workload (the paper's
Table 4 runs Memcached on Mnemosyne): a chained hash map whose structural
splices — bucket head and count — are made failure atomic by the redo
log, while entry and value buffers are persisted before they become
reachable.

Self-annotation: when a PMTest session is attached, every insert places
the low-level checkers that state the redo protocol's requirements
(entry persists before it is reachable; the structural update is durable
when the operation returns).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.pmdk.objects import PStruct, PtrField, U64Field
from repro.pmdk.pool import PMPool
from repro.pmem.memory import PMImage
from repro.mnemosyne.log import RawWordLog, replay_log

DEFAULT_BUCKETS = 64
DEFAULT_LOG_CAPACITY = 4096


class MapHeader(PStruct):
    nbuckets = U64Field()
    count = U64Field()
    buckets = PtrField()
    log_base = PtrField()
    log_capacity = U64Field()


class MapEntry(PStruct):
    key_hash = U64Field()
    next = PtrField()
    key = PtrField()  # byte buffer: len u64 + bytes
    value = PtrField()  # byte buffer: len u64 + bytes


def fnv1a_64(data: bytes) -> int:
    """FNV-1a: a stable 64-bit string hash."""
    value = 0xCBF29CE484222325
    for byte in data:
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


class MnemosyneMap:
    """Persistent ``bytes -> bytes`` map with redo-logged splices."""

    def __init__(
        self,
        pool: PMPool,
        root_slot: int = 0,
        nbuckets: int = DEFAULT_BUCKETS,
        log_faults: Tuple[str, ...] = (),
        log_capacity: int = DEFAULT_LOG_CAPACITY,
    ) -> None:
        self.pool = pool
        self.runtime = pool.runtime
        addr = pool.read_root(root_slot)
        if addr:
            self.header = MapHeader(pool, addr)
        else:
            self.header = self._create(root_slot, nbuckets, log_capacity)
        self.log = RawWordLog(
            self.runtime,
            self.header.log_base,
            self.header.log_capacity,
            faults=log_faults,
        )

    def _create(self, root_slot: int, nbuckets: int,
                log_capacity: int) -> MapHeader:
        pool = self.pool
        header = MapHeader.alloc(pool)
        header.nbuckets = nbuckets
        header.count = 0
        header.buckets = pool.alloc(nbuckets * 8)
        header.log_base = pool.alloc(log_capacity)
        header.log_capacity = log_capacity
        self.runtime.persist(header.addr, MapHeader.SIZE)
        pool.write_root(root_slot, header.addr)
        return header

    # ------------------------------------------------------------------
    # Byte buffers
    # ------------------------------------------------------------------
    def _store_buffer(self, data: bytes) -> int:
        addr = self.pool.alloc(8 + max(len(data), 1))
        self.runtime.store_u64(addr, len(data))
        if data:
            self.runtime.store(addr + 8, data)
        return addr

    def _load_buffer(self, addr: int) -> bytes:
        length = self.runtime.load_u64(addr)
        if length == 0:
            return b""
        return self.runtime.load(addr + 8, length)

    # ------------------------------------------------------------------
    def _bucket_addr(self, key: bytes) -> int:
        index = fnv1a_64(key) % self.header.nbuckets
        return self.header.buckets + index * 8

    def _find(self, key: bytes) -> Optional[MapEntry]:
        digest = fnv1a_64(key)
        cursor = self.runtime.load_u64(self._bucket_addr(key))
        while cursor:
            entry = MapEntry(self.pool, cursor)
            if entry.key_hash == digest and self._load_buffer(entry.key) == key:
                return entry
            cursor = entry.next
        return None

    # ------------------------------------------------------------------
    def set(self, key: bytes, value: bytes) -> None:
        """Insert or update; failure atomic via the redo log."""
        runtime = self.runtime
        session = runtime.session
        existing = self._find(key)
        if existing is not None:
            buf = self._store_buffer(value)
            runtime.persist(buf, 8 + max(len(value), 1))
            value_slot, _ = existing.field_range("value")
            self.log.update([(value_slot, buf)])
            if session is not None:
                session.is_persist(value_slot, 8)
            return
        # Build and persist the entry before it becomes reachable.
        key_buf = self._store_buffer(key)
        value_buf = self._store_buffer(value)
        entry = MapEntry.alloc(self.pool)
        head_addr = self._bucket_addr(key)
        entry.key_hash = fnv1a_64(key)
        entry.key = key_buf
        entry.value = value_buf
        entry.next = runtime.load_u64(head_addr)
        runtime.clwb(key_buf, 8 + max(len(key), 1))
        runtime.clwb(value_buf, 8 + max(len(value), 1))
        runtime.clwb(entry.addr, MapEntry.SIZE)
        runtime.sfence()
        # Atomic structural splice: head + count through the redo log.
        count_slot, _ = self.header.field_range("count")
        self.log.update(
            [(head_addr, entry.addr), (count_slot, self.header.count + 1)]
        )
        if session is not None:
            session.is_ordered_before(entry.addr, MapEntry.SIZE, head_addr, 8)
            session.is_persist(head_addr, 8)
            session.is_persist(count_slot, 8)

    def get(self, key: bytes) -> Optional[bytes]:
        entry = self._find(key)
        if entry is None:
            return None
        return self._load_buffer(entry.value)

    def delete(self, key: bytes) -> bool:
        runtime = self.runtime
        head_addr = self._bucket_addr(key)
        digest = fnv1a_64(key)
        prev_slot = head_addr
        cursor = runtime.load_u64(head_addr)
        while cursor:
            entry = MapEntry(self.pool, cursor)
            if entry.key_hash == digest and self._load_buffer(entry.key) == key:
                count_slot, _ = self.header.field_range("count")
                self.log.update(
                    [(prev_slot, entry.next),
                     (count_slot, self.header.count - 1)]
                )
                return True
            prev_slot, _ = entry.field_range("next")
            cursor = entry.next
        return False

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        runtime = self.runtime
        for index in range(self.header.nbuckets):
            cursor = runtime.load_u64(self.header.buckets + index * 8)
            while cursor:
                entry = MapEntry(self.pool, cursor)
                yield self._load_buffer(entry.key), self._load_buffer(entry.value)
                cursor = entry.next

    def __len__(self) -> int:
        return self.header.count

    def __contains__(self, key: bytes) -> bool:
        return self._find(key) is not None


def recover_map_image(image: PMImage, root_addr_value: int) -> int:
    """Offline recovery: replay the map's redo log in a crash image."""
    if root_addr_value == 0:
        return 0
    log_base = image.read_u64(root_addr_value + 24)
    return replay_log(image, log_base)


def validate_image(image: PMImage, root_addr_value: int) -> bool:
    """Consistency of a recovered crash image: acyclic chains, complete
    reachable entries, count matching the reachable entries."""
    if root_addr_value == 0:
        return True
    nbuckets = image.read_u64(root_addr_value)
    count = image.read_u64(root_addr_value + 8)
    buckets = image.read_u64(root_addr_value + 16)
    if nbuckets == 0 or buckets == 0:
        return False
    seen = set()
    reachable = 0
    for index in range(nbuckets):
        cursor = image.read_u64(buckets + index * 8)
        while cursor:
            if cursor in seen or cursor + MapEntry.SIZE > len(image):
                return False
            seen.add(cursor)
            key_buf = image.read_u64(cursor + 16)
            value_buf = image.read_u64(cursor + 24)
            if key_buf == 0 or value_buf == 0:
                return False
            key_len = image.read_u64(key_buf)
            digest = image.read_u64(cursor)
            key = image.read(key_buf + 8, key_len) if key_len else b""
            if fnv1a_64(key) != digest:
                return False  # incomplete key buffer became reachable
            reachable += 1
            cursor = image.read_u64(cursor + 8)
    return reachable == count
