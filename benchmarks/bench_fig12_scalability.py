"""Figure 12: Memcached scalability vs program threads and PMTest workers.

Paper result: (a) with a single PMTest worker, slowdown grows with the
number of Memcached threads (more traces per unit time); (b) with four
Memcached threads, adding workers reduces the slowdown; (c) growing both
together keeps slowdown roughly flat, rising slightly from inter-thread
communication.

The worker axis depends on the checking backend (DESIGN.md Section 6):
the ``thread`` backend reproduces the paper's dispatch architecture but
the GIL keeps CPU-bound checking serialized, so its throughput stays
flat as workers grow; the ``process`` backend checks on worker
processes and is the one that scales with cores.  The ``fig12d`` sweep
below measures exactly that: pure checking throughput per backend per
worker count, the before/after comparison for the process backend.
"""

import os

import pytest

from _harness import (
    measure_decode_replay_split,
    measure_engine_speedup,
    measure_wire_bytes,
    pedantic,
    prepare_backend_throughput,
    prepare_engine_replay,
    prepare_memcached_threads,
    record,
    slowdown,
    RESULTS,
)
from repro.core.engine_columnar import ENGINE_NAMES

THREADS = [1, 2, 4]
WORKERS = [1, 2, 4]
BACKENDS = ("thread", "process")
#: transport x codec combinations the process backend supports
TRANSPORT_COMBOS = [("queue", "pickle"), ("queue", "binary"), ("shm", "binary")]
#: the epoch-sharding sweep ships a few large traces instead of many
#: small ones: sharding only engages above the per-trace threshold
SHARD_TRACES = 8
SHARD_TX_PER_TRACE = 400


@pytest.mark.parametrize("threads", THREADS)
def test_fig12_baseline(benchmark, bench_rounds, threads):
    """Uninstrumented Memcached at each thread count (denominators)."""
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_memcached_threads(threads, 0, with_pmtest=False),
    )
    record("fig12", (threads, 0, "none"), benchmark)


@pytest.mark.parametrize("threads", THREADS)
def test_fig12a_thread_sweep(benchmark, bench_rounds, threads):
    """(a) single PMTest worker, 1-4 Memcached threads."""
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_memcached_threads(threads, 1),
    )
    record("fig12", (threads, 1, "pmtest"), benchmark)


@pytest.mark.parametrize("workers", [2, 4])
def test_fig12b_worker_sweep(benchmark, bench_rounds, workers):
    """(b) four Memcached threads, 2-4 PMTest workers (1 is in (a))."""
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_memcached_threads(4, workers),
    )
    record("fig12", (4, workers, "pmtest"), benchmark)


@pytest.mark.parametrize("both", [2])
def test_fig12c_joint_sweep(benchmark, bench_rounds, both):
    """(c) threads and workers grown together (1,1 / 2,2 / 4,4; the
    endpoints already exist in (a) and (b))."""
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_memcached_threads(both, both),
    )
    record("fig12", (both, both, "pmtest"), benchmark)


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_fig12d_backend_throughput(benchmark, bench_rounds, backend, workers):
    """(d) pure checking throughput: backend x worker-count sweep."""
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_backend_throughput(backend, workers),
    )
    record("fig12-backend", (backend, workers), benchmark)


@pytest.mark.parametrize("backend", BACKENDS)
def test_fig12e_backend_end_to_end(benchmark, bench_rounds, backend):
    """Backends under the full Memcached workload (4 threads, 4 workers)."""
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_memcached_threads(4, 4, backend=backend),
    )
    record("fig12", (4, 4, f"pmtest-{backend}"), benchmark)


def test_fig12d_backend_shape(benchmark):
    """The tentpole claim: process-backend checking scales with workers
    where the thread backend stays flat (GIL)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    times = {
        (backend, workers): RESULTS.get(("fig12-backend", (backend, workers)))
        for backend in BACKENDS
        for workers in WORKERS
    }
    if any(value is None for value in times.values()):
        pytest.skip("fig12d benchmarks did not run")
    thread_scaling = times[("thread", 1)] / times[("thread", 4)]
    process_scaling = times[("process", 1)] / times[("process", 4)]
    # The thread backend must not magically beat the GIL.
    assert thread_scaling < 1.5, thread_scaling
    if (os.cpu_count() or 1) >= 4:
        # On a multi-core host the process backend must actually scale.
        assert process_scaling > 1.5, process_scaling
        assert process_scaling > thread_scaling, (
            process_scaling,
            thread_scaling,
        )
    else:
        pytest.skip(
            f"only {os.cpu_count()} core(s): process-backend scaling "
            f"measured {process_scaling:.2f}x but the >1.5x assertion "
            "needs a multi-core host"
        )


@pytest.mark.parametrize("transport,codec", TRANSPORT_COMBOS)
def test_fig12f_transport_ablation(benchmark, bench_rounds, transport, codec):
    """(f) transport/codec ablation: the same pure-checking drain as
    fig12d, process backend, 4 workers, varying only the IPC channel
    (queue vs shm ring) and the wire encoding (pickle vs binary)."""
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_backend_throughput(
            "process", 4, transport=transport, codec=codec
        ),
    )
    record("fig12-transport", (transport, codec), benchmark)


def test_fig12f_wire_bytes(benchmark):
    """The codec claim: struct-packed binary ships >= 3x fewer bytes per
    trace than the pickled-tuple wire on the fig12 checking workload.
    This is a deterministic byte count, so it holds on any host."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    per_trace = measure_wire_bytes()
    ratio = per_trace["pickle"] / per_trace["binary"]
    assert ratio >= 3.0, per_trace


def test_fig12f_transport_shape(benchmark):
    """The transport claim: with real parallelism available, shm+binary
    drains the same workload faster than queue+pickle."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    times = {
        combo: RESULTS.get(("fig12-transport", combo))
        for combo in TRANSPORT_COMBOS
    }
    if any(value is None for value in times.values()):
        pytest.skip("fig12f benchmarks did not run")
    if (os.cpu_count() or 1) >= 4:
        assert times[("shm", "binary")] < times[("queue", "pickle")], times
    else:
        ratio = times[("queue", "pickle")] / times[("shm", "binary")]
        pytest.skip(
            f"only {os.cpu_count()} core(s): shm+binary measured "
            f"{ratio:.2f}x queue+pickle but the faster-drain assertion "
            "needs a multi-core host"
        )


@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_fig12g_engine_ablation(benchmark, bench_rounds, engine):
    """(g) replay-engine ablation: decode one binary trace batch and
    check every trace, single worker, varying only ``--engine``.  The
    fig10a-shaped micro workload (write/clwb/sfence/isPersist over
    rotating cachelines) is where per-event object overhead is purest."""
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_engine_replay(engine),
    )
    record("fig12-engine", (engine,), benchmark)


def test_fig12g_engine_shape(benchmark):
    """The tentpole claim: columnar decode+replay is >= 2x the object
    engine on the fig10a micro workload.  Measured with interleaved
    min-of-rounds (robust to CI-host noise) on a fixed workload size,
    independent of the smoke-scaling env knobs."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    best = measure_engine_speedup()
    speedup = best["object"] / best["columnar"]
    assert speedup >= 2.0, (
        f"columnar engine {speedup:.2f}x object on the fig10a micro "
        f"workload; the columnar decode+replay claim needs >= 2x ({best})"
    )


def test_fig12g_decode_replay_split(benchmark):
    """Populate the per-batch decode-vs-replay split for the dumped
    JSON: per engine, how much of each task batch went to wire decoding
    vs shadow replay."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    split = measure_decode_replay_split()
    for engine, row in split.items():
        assert row["batches"] > 0, engine
        assert len(row["per_batch"]) == row["batches"], engine


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_fig12h_sharded_throughput(benchmark, bench_rounds, backend, workers):
    """(h) epoch-sharded checking: a few large multi-epoch traces are
    split at fence boundaries across the worker pool (columnar engine,
    ``shard_min_events=1``); the process rows use the shm+binary
    transport, the pairing the sharding design targets."""
    transport, codec = ("shm", "binary") if backend == "process" else (None, None)
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_backend_throughput(
            backend,
            workers,
            n_traces=SHARD_TRACES,
            transport=transport,
            codec=codec,
            engine="columnar",
            shard_min_events=1,
            tx_per_trace=SHARD_TX_PER_TRACE,
        ),
    )
    record("fig12-shard", (backend, workers), benchmark)


def test_fig12h_shm_vs_thread_shape(benchmark):
    """The sharding claim: with real parallelism, epoch-sharded
    checking over process+shm beats the thread backend on the same
    large traces (the GIL serializes thread-backend shards)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    times = {
        (backend, workers): RESULTS.get(("fig12-shard", (backend, workers)))
        for backend in BACKENDS
        for workers in (1, 4)
    }
    if any(value is None for value in times.values()):
        pytest.skip("fig12h benchmarks did not run")
    process_scaling = times[("process", 1)] / times[("process", 4)]
    if (os.cpu_count() or 1) >= 4:
        assert times[("process", 4)] < times[("thread", 4)], times
        assert process_scaling > 1.0, process_scaling
    else:
        ratio = times[("thread", 4)] / times[("process", 4)]
        pytest.skip(
            f"only {os.cpu_count()} core(s): sharded process+shm measured "
            f"{ratio:.2f}x the thread backend (scaling "
            f"{process_scaling:.2f}x) but the faster-drain assertion "
            "needs a multi-core host"
        )


def test_fig12_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    one_thread = slowdown("fig12", (1, 1, "pmtest"), (1, 0, "none"))
    four_threads = slowdown("fig12", (4, 1, "pmtest"), (4, 0, "none"))
    if one_thread is None or four_threads is None:
        pytest.skip("fig12 benchmarks did not run")
    # (a) more tracked program threads -> at least as much slowdown.
    assert four_threads > one_thread * 0.8, (one_thread, four_threads)
    # Everything stays a bounded overhead, not a blow-up.
    for threads in THREADS:
        ratio = slowdown("fig12", (threads, 1, "pmtest"),
                         (threads, 0, "none"))
        if ratio is not None:
            assert ratio < 30, ratio
