"""High-level checkers built from the two low-level ones (paper Section 5.1).

The paper's thesis is that ``isPersist`` and ``isOrderedBefore`` are
sufficient building blocks for library-specific automation.  This module
provides the composition helpers:

* :func:`tx_checked` — the PMDK-style transaction checker pair
  (``TX_CHECKER_START``/``TX_CHECKER_END``) as a context manager;
* :func:`assert_persisted` / :func:`assert_persisted_vars` — batch
  ``isPersist`` over ranges or registered variable names;
* :func:`assert_ordered_chain` — assert a required persist order across a
  sequence of ranges (e.g. "log before data before commit record") with
  pairwise ``isOrderedBefore`` checkers.

Library authors are the intended users: e.g. :mod:`repro.pmdk` calls
these from its instrumented transaction hooks so that application writers
get checking "for free" (paper Section 7.2).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Sequence, Tuple

from repro.core.api import PMTestSession

Range = Tuple[int, int]  # (addr, size)


@contextmanager
def tx_checked(session: PMTestSession) -> Iterator[PMTestSession]:
    """Wrap a transaction in the high-level transaction checker.

    Inside the scope the engine verifies (i) every modified persistent
    object was backed up with ``TX_ADD`` before modification, (ii) the
    transaction terminates, and (iii) every modified object is durable by
    scope end; it also flags duplicate logs and redundant writebacks.
    """
    session.tx_check_start()
    try:
        yield session
    finally:
        session.tx_check_end()


def assert_persisted(session: PMTestSession, ranges: Iterable[Range]) -> None:
    """Place an ``isPersist`` checker for each ``(addr, size)`` range."""
    for addr, size in ranges:
        session.is_persist(addr, size)


def assert_persisted_vars(session: PMTestSession, names: Iterable[str]) -> None:
    """Place ``isPersist`` checkers for registered variable names."""
    for name in names:
        session.is_persist_var(name)


def assert_ordered_chain(session: PMTestSession, ranges: Sequence[Range]) -> None:
    """Assert that each range persists before the next one in sequence.

    This captures the canonical undo-logging requirement as one call:
    ``assert_ordered_chain(s, [log, data, commit])`` asserts the log
    persists before the data and the data before the commit record.
    """
    for (addr_a, size_a), (addr_b, size_b) in zip(ranges, ranges[1:]):
        session.is_ordered_before(addr_a, size_a, addr_b, size_b)
