"""Typed persistent structs over raw PM addresses.

Data structures on PM are laid out like C structs.  This module gives the
workloads a declarative way to express those layouts while keeping every
access an explicit, instrumented PM operation::

    class ListNode(PStruct):
        value = U64Field()
        next = PtrField()

    node = ListNode.alloc(pool)
    node.value = 42            # -> runtime.store_u64(addr + 0, 42)
    node.next = other.addr     # -> runtime.store_u64(addr + 8, ...)
    pool.tx.add(*node.field_range("value"))   # undo-log one field

Field offsets are assigned in declaration order.  Reads and writes go
through the pool's runtime, so the PM machine, PMTest, and any baseline
observer all see them; nothing is cached on the Python side.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle breaker for typing only
    from repro.pmdk.pool import PMPool


class Field:
    """Base descriptor for one struct field.  Subclasses define ``size``."""

    size: int = 0

    def __init__(self) -> None:
        self.name: str = ""
        self.offset: int = -1

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    # Subclasses implement __get__/__set__ in terms of these hooks.
    def addr_in(self, instance: "PStruct") -> int:
        return instance.addr + self.offset


class U64Field(Field):
    """An unsigned 64-bit integer field."""

    size = 8

    def __get__(self, instance: Optional["PStruct"], owner: type):
        if instance is None:
            return self
        return instance.pool.runtime.load_u64(self.addr_in(instance))

    def __set__(self, instance: "PStruct", value: int) -> None:
        instance.pool.runtime.store_u64(self.addr_in(instance), value)


class I64Field(U64Field):
    """A signed 64-bit integer field (two's complement)."""

    def __get__(self, instance: Optional["PStruct"], owner: type):
        if instance is None:
            return self
        value = instance.pool.runtime.load_u64(self.addr_in(instance))
        return value - (1 << 64) if value >= (1 << 63) else value


class PtrField(U64Field):
    """A persistent pointer: the PM address of another object (0 = null)."""


class BytesField(Field):
    """A fixed-size byte buffer field."""

    def __init__(self, size: int) -> None:
        super().__init__()
        if size <= 0:
            raise ValueError("BytesField size must be positive")
        self.size = size

    def __get__(self, instance: Optional["PStruct"], owner: type):
        if instance is None:
            return self
        return instance.pool.runtime.load(self.addr_in(instance), self.size)

    def __set__(self, instance: "PStruct", value: bytes) -> None:
        if len(value) > self.size:
            raise ValueError(
                f"{len(value)} bytes do not fit field {self.name} "
                f"of {self.size} bytes"
            )
        padded = value.ljust(self.size, b"\0")
        instance.pool.runtime.store(self.addr_in(instance), padded)


class _ArrayAccessor:
    """Element-wise access to a :class:`ArrayField`."""

    __slots__ = ("_instance", "_field")

    def __init__(self, instance: "PStruct", field: "ArrayField") -> None:
        self._instance = instance
        self._field = field

    def __len__(self) -> int:
        return self._field.count

    def addr(self, index: int) -> int:
        if not 0 <= index < self._field.count:
            raise IndexError(f"array index {index} out of range")
        return self._field.addr_in(self._instance) + index * 8

    def __getitem__(self, index: int) -> int:
        return self._instance.pool.runtime.load_u64(self.addr(index))

    def __setitem__(self, index: int, value: int) -> None:
        self._instance.pool.runtime.store_u64(self.addr(index), value)

    def range_of(self, index: int) -> Tuple[int, int]:
        """``(addr, size)`` of one element, for checkers and tx_add."""
        return self.addr(index), 8


class ArrayField(Field):
    """A fixed-length array of u64 elements."""

    def __init__(self, count: int) -> None:
        super().__init__()
        if count <= 0:
            raise ValueError("ArrayField count must be positive")
        self.count = count
        self.size = count * 8

    def __get__(self, instance: Optional["PStruct"], owner: type):
        if instance is None:
            return self
        return _ArrayAccessor(instance, self)

    def __set__(self, instance: "PStruct", value: object) -> None:
        raise AttributeError(
            f"assign to elements of {self.name}[i], not the array itself"
        )


class PStruct:
    """Base class for persistent structs.

    Subclasses declare fields as class attributes; offsets are assigned
    in declaration order and the total ``SIZE`` is computed.  Instances
    are lightweight views ``(pool, addr)`` over PM.
    """

    SIZE: int = 0
    _fields: Dict[str, Field] = {}

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        base = cls.__mro__[1]
        fields: Dict[str, Field] = dict(getattr(base, "_fields", {}))
        offset = getattr(base, "SIZE", 0)
        for name, attr in list(vars(cls).items()):
            if isinstance(attr, Field):
                attr.offset = offset
                offset += attr.size
                fields[name] = attr
        cls._fields = fields
        cls.SIZE = offset

    def __init__(self, pool: "PMPool", addr: int) -> None:
        if addr <= 0:
            raise ValueError(f"invalid {type(self).__name__} address {addr:#x}")
        self.pool = pool
        self.addr = addr

    # ------------------------------------------------------------------
    @classmethod
    def alloc(cls: Type["PStruct"], pool: "PMPool") -> "PStruct":
        """Allocate zeroed PM for one instance and return a view on it."""
        addr = pool.alloc(cls.SIZE)
        return cls(pool, addr)

    @classmethod
    def at(cls: Type["PStruct"], pool: "PMPool", addr: int) -> "PStruct":
        """A view over an existing object (e.g. following a PtrField)."""
        return cls(pool, addr)

    def free(self) -> None:
        self.pool.free(self.addr)

    # ------------------------------------------------------------------
    def range(self) -> Tuple[int, int]:
        """``(addr, size)`` of the whole struct."""
        return self.addr, self.SIZE

    def field_range(self, name: str) -> Tuple[int, int]:
        """``(addr, size)`` of one field, for checkers and tx_add."""
        field = self._fields[name]
        return self.addr + field.offset, field.size

    def field_names(self) -> List[str]:
        return list(self._fields)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PStruct)
            and type(other) is type(self)
            and other.addr == self.addr
        )

    def __hash__(self) -> int:
        return hash((type(self), self.addr))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}@{self.addr:#x}"


def zero_struct(pool: "PMPool", addr: int, size: int) -> None:
    """Zero-fill a freshly allocated struct through the runtime."""
    pool.runtime.store(addr, b"\0" * size)
