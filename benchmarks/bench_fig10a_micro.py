"""Figure 10a: PMTest vs Pmemcheck slowdown on the five microbenchmarks.

Paper setup: 100K insertions (one transaction each) per structure, with
the transaction payload swept from 64 B to 4096 B; slowdown is runtime
normalized to the uninstrumented original.  Paper result: PMTest is
5.2–8.9x faster than Pmemcheck (7.1x average), and PMTest's overhead
*shrinks* as transactions grow (coarse-grained interval tracking) while
Pmemcheck's does not (per-store tracking).

The op count is scaled down (the substrate is a simulator); the
reproduced quantities are the slowdown ratios printed in the terminal
summary, whose *shape* must match the paper.
"""

import time

import pytest

from _harness import (
    RESULTS,
    env_int,
    make_checking_traces,
    pedantic,
    prepare_micro,
    record,
    slowdown,
)
from repro.core.engine import CheckingEngine, _TraceChecker
from repro.core.metrics import MetricsLevel, MetricsRegistry
from repro.core.rules import X86Rules

STRUCTURES = ["ctree", "btree", "rbtree", "hashmap_tx", "hashmap_atomic"]
TX_SIZES = [64, 256, 1024, 4096]
TOOLS = ["none", "pmtest", "pmemcheck"]


@pytest.mark.parametrize("structure", STRUCTURES)
@pytest.mark.parametrize("value_size", TX_SIZES)
@pytest.mark.parametrize("tool", TOOLS)
def test_fig10a(benchmark, bench_rounds, structure, value_size, tool):
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_micro(
            structure, value_size, tool, n_ops=100,
            figure="fig10a", config=(structure, value_size, tool),
        ),
    )
    record("fig10a", (structure, value_size, tool), benchmark)


def test_metrics_off_overhead():
    """The metrics-off path must cost no more than the unhooked loop.

    The off path is one ``metrics is None`` branch per trace; this pits
    ``check_trace`` with no registry against a replica of the historical
    replay loop (no metrics code at all) over identical traces, using
    interleaved min-of-rounds to squeeze out scheduler noise.  The
    off/full ratio is recorded alongside for the benchmark JSON.
    """
    traces = make_checking_traces(env_int("PMTEST_BENCH_TRACES", 60))
    rules = X86Rules()
    engine_off = CheckingEngine(rules, metrics=None)
    registry = MetricsRegistry(MetricsLevel.FULL)
    engine_full = CheckingEngine(rules, registry)

    def run_off():
        for trace in traces:
            engine_off.check_trace(trace)

    def run_plain():
        for trace in traces:
            checker = _TraceChecker(rules, trace)
            checker._run_plain(trace.events)
            checker._finish()
            checker.result.events_checked += len(trace.events)

    def run_full():
        for trace in traces:
            engine_full.check_trace(trace)

    clock = time.perf_counter
    best = {"plain": float("inf"), "off": float("inf"), "full": float("inf")}
    for _ in range(7):
        for name, body in (("plain", run_plain), ("off", run_off),
                           ("full", run_full)):
            start = clock()
            body()
            best[name] = min(best[name], clock() - start)
    for name, seconds in best.items():
        RESULTS[("metrics-overhead", (name,))] = seconds
    # <2% relative, with a small absolute floor so a sub-millisecond
    # smoke run cannot flake on timer granularity.
    assert best["off"] <= best["plain"] * 1.02 + 0.002, best


def test_fig10a_shape(benchmark):
    """The paper's headline: PMTest beats Pmemcheck on average, and the
    advantage grows with transaction size."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    pmtest_ratios = []
    pmc_ratios = []
    for structure in STRUCTURES:
        for size in TX_SIZES:
            base = (structure, size, "none")
            ratio = slowdown("fig10a", (structure, size, "pmtest"), base)
            pmc = slowdown("fig10a", (structure, size, "pmemcheck"), base)
            if ratio is not None and pmc is not None:
                pmtest_ratios.append(ratio)
                pmc_ratios.append(pmc)
    if not pmtest_ratios:
        pytest.skip("fig10a benchmarks did not run")
    mean_pmtest = sum(pmtest_ratios) / len(pmtest_ratios)
    mean_pmc = sum(pmc_ratios) / len(pmc_ratios)
    # Who wins: PMTest must be markedly cheaper than Pmemcheck on
    # average (paper: 7.1x; we only require a clear factor, the exact
    # magnitude depends on the substrate).
    assert mean_pmc > 2 * mean_pmtest, (mean_pmtest, mean_pmc)

    def mean_slowdown(tool: str, size: int) -> float:
        ratios = [
            slowdown("fig10a", (s, size, tool), (s, size, "none"))
            for s in STRUCTURES
        ]
        ratios = [r for r in ratios if r is not None]
        return sum(ratios) / len(ratios)

    # Paper trend: PMTest's overhead decreases as transactions grow
    # (coarse-grained interval tracking amortizes).
    assert mean_slowdown("pmtest", 4096) < mean_slowdown("pmtest", 64)
    # And Pmemcheck stays well above PMTest at every size.
    for size in TX_SIZES:
        assert mean_slowdown("pmemcheck", size) > mean_slowdown("pmtest", size)
