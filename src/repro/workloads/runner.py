"""Harness helpers shared by tests and the benchmark suite."""

from __future__ import annotations

import threading
from typing import Callable, Iterable, List, Optional

from repro.core.api import PMTestSession
from repro.pmfs.fs import PMFS
from repro.workloads.clients import KVOp


def drive_kv(
    server,
    ops: Iterable[KVOp],
    session: Optional[PMTestSession] = None,
    trace_every: int = 1,
    **serve_kwargs,
) -> int:
    """Run a KV op stream against a server with a ``serve`` method."""
    return server.serve(
        ops, session=session, trace_every=trace_every, **serve_kwargs
    )


def drive_fs(
    fs: PMFS,
    ops: Iterable[tuple],
    session: Optional[PMTestSession] = None,
    trace_every: int = 1,
) -> int:
    """Run a filesystem op stream (filebench/oltp shapes) against PMFS."""
    processed = 0
    for op in ops:
        kind = op[0]
        if kind == "create":
            fs.create(op[1])
        elif kind == "write":
            fs.write(op[1], op[2], op[3])
        elif kind == "read":
            fs.read(op[1], op[2], op[3])
        elif kind == "fsync":
            fs.fsync(op[1])
        elif kind == "delete":
            fs.unlink(op[1])
        else:
            raise ValueError(f"unknown fs op {kind!r}")
        processed += 1
        if session is not None and processed % trace_every == 0:
            session.send_trace()
    if session is not None:
        session.send_trace()
    return processed


def run_client_threads(
    worker: Callable[[int], object],
    n_threads: int,
    session: Optional[PMTestSession] = None,
) -> List[object]:
    """Run ``worker(thread_index)`` on ``n_threads`` threads.

    Each thread registers with the session first (PMTest_THREAD_INIT +
    PMTest_START), mirroring the paper's multithreaded tracking setup.
    Worker exceptions propagate to the caller.
    """
    results: List[object] = [None] * n_threads
    errors: List[BaseException] = []

    def body(index: int) -> None:
        try:
            if session is not None:
                session.thread_init(f"client-{index}")
                session.start()
            results[index] = worker(index)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors.append(exc)

    threads = [
        threading.Thread(target=body, args=(i,), name=f"client-{i}")
        for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return results
