"""Tests for the eADR persistency model extension."""

import pytest

from repro.core.api import PMTestSession
from repro.core.engine import CheckingEngine
from repro.core.events import Event, Op, Trace
from repro.core.reports import ReportCode
from repro.core.rules.eadr import EADRRules


def check(*ops):
    trace = Trace(0)
    for op in ops:
        trace.append(op)
    return CheckingEngine(EADRRules()).check_trace(trace)


def W(addr, size=8):
    return Event(Op.WRITE, addr, size)


class TestEADR:
    def test_fence_alone_persists(self):
        result = check(W(0), Event(Op.SFENCE), Event(Op.CHECK_PERSIST, 0, 8))
        assert result.clean

    def test_unfenced_write_not_durable(self):
        result = check(W(0), Event(Op.CHECK_PERSIST, 0, 8))
        assert result.count(ReportCode.NOT_PERSISTED) == 1

    def test_fence_orders(self):
        result = check(
            W(0),
            Event(Op.SFENCE),
            W(64),
            Event(Op.CHECK_ORDER, 0, 8, 64, 8),
        )
        assert not result.failures

    def test_same_epoch_unordered(self):
        result = check(W(0), W(64), Event(Op.CHECK_ORDER, 0, 8, 64, 8))
        assert result.count(ReportCode.NOT_ORDERED) == 1

    def test_every_flush_is_flagged(self):
        result = check(W(0), Event(Op.CLWB, 0, 8), Event(Op.SFENCE))
        assert result.count(ReportCode.UNNECESSARY_FLUSH) == 1
        assert result.passed  # a warning, not a failure

    def test_porting_diagnosis(self):
        """Port clwb-heavy x86 code to eADR: PMTest flags every flush
        as removable while confirming durability still holds."""
        session = PMTestSession(rules=EADRRules(), workers=0)
        session.thread_init()
        session.start()
        for i in range(4):
            session.write(i * 64, 8)
            session.clwb(i * 64, 8)  # habit from the x86 build
            session.sfence()
            session.is_persist(i * 64, 8)
        result = session.exit()
        assert result.passed
        assert result.count(ReportCode.UNNECESSARY_FLUSH) == 4

    def test_rejects_hops_ops(self):
        from repro.core.rules.base import UnsupportedOperation

        rules = EADRRules()
        shadow = rules.make_shadow()
        with pytest.raises(UnsupportedOperation):
            rules.apply_op(shadow, Event(Op.DFENCE))
