"""A chained hash map built on low-level primitives, no transactions.

This is the "HashMap (w/o TX)" microbenchmark of paper Figure 10 — the
structure the paper singles out as having higher testing overhead because
of its "more intensive use of low-level PM operations".

Insert publication protocol (lock-free-reader style):

1. write the value buffer and entry, ``persist`` them;
2. write the bucket head pointer to the new entry, ``persist`` it —
   the entry is now *published*;
3. bump the count, ``persist`` it.

A crash between steps leaves either an unpublished (invisible) entry or
a published entry with a stale count — both recoverable, provided the
ordering holds: the entry must persist *before* its publication.  The
structure self-annotates with PMTest's low-level checkers at exactly
those points (``isOrderedBefore(entry, head)``, ``isPersist(head)``).

Fault sites:

``no-entry-persist``
    Skip step 1's flush+fence: the head may persist before the entry —
    the canonical ordering bug.
``no-publish-fence``
    Flush the head but skip the fence (durability bug).
``count-no-flush``
    Never flush the count update (durability bug).
``double-flush-head``
    Flush the head twice (performance bug: duplicate writeback).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.pmdk.objects import PStruct, PtrField, U64Field
from repro.pmdk.pool import PMPool
from repro.pmem.memory import PMImage
from repro.structures.base import PersistentMap, ValueBuffer
from repro.structures.hashmap_tx import DEFAULT_BUCKETS, hash_u64


class AtomicTable(PStruct):
    nbuckets = U64Field()
    count = U64Field()
    buckets = PtrField()


class AtomicEntry(PStruct):
    key = U64Field()
    next = PtrField()
    value = PtrField()


class AtomicHashMap(PersistentMap):
    """Low-level (non-transactional) chained hash map."""

    NAME = "hashmap_atomic"

    KNOWN_FAULTS = frozenset(
        {
            "no-entry-persist",
            "no-publish-fence",
            "count-no-flush",
            "double-flush-head",
            "double-flush-entry",
        }
    )

    def __init__(
        self,
        pool: PMPool,
        root_slot: int = 0,
        value_size: int = 64,
        faults=(),
        nbuckets: int = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(pool, root_slot, value_size, faults)
        addr = pool.read_root(root_slot)
        if addr:
            self.table = AtomicTable(pool, addr)
        else:
            self.table = self._create(nbuckets)

    def _create(self, nbuckets: int) -> AtomicTable:
        runtime = self.pool.runtime
        table = AtomicTable.alloc(self.pool)
        table.nbuckets = nbuckets
        table.count = 0
        table.buckets = self.pool.alloc(nbuckets * 8)
        runtime.persist(table.addr, AtomicTable.SIZE)
        self.pool.write_root(self.root_slot, table.addr)
        return table

    # ------------------------------------------------------------------
    def _bucket_addr(self, key: int) -> int:
        return self.table.buckets + (hash_u64(key) % self.table.nbuckets) * 8

    def _find(self, key: int) -> Optional[AtomicEntry]:
        runtime = self.pool.runtime
        cursor = runtime.load_u64(self._bucket_addr(key))
        while cursor:
            entry = AtomicEntry(self.pool, cursor)
            if entry.key == key:
                return entry
            cursor = entry.next
        return None

    # ------------------------------------------------------------------
    def insert(self, key: int, payload: Optional[bytes] = None) -> None:
        payload = payload if payload is not None else self.default_payload(key)
        runtime = self.pool.runtime
        session = runtime.session
        existing = self._find(key)
        if existing is not None:
            # Build the new buffer, persist it, then swing the pointer.
            buf = ValueBuffer.create(self.pool, payload)
            runtime.persist(*buf.payload_range())
            value_addr, _ = existing.field_range("value")
            runtime.store_u64(value_addr, buf.addr)
            runtime.persist(value_addr, 8)
            if session is not None:
                session.is_ordered_before(*buf.payload_range(), value_addr, 8)
            return
        # 1. Entry + value, persisted before publication.
        buf = ValueBuffer.create(self.pool, payload)
        entry = AtomicEntry.alloc(self.pool)
        head_addr = self._bucket_addr(key)
        entry.key = key
        entry.value = buf.addr
        entry.next = runtime.load_u64(head_addr)
        if not self._fault("no-entry-persist"):
            runtime.clwb(*buf.payload_range())
            runtime.clwb(entry.addr, AtomicEntry.SIZE)
            if self._fault("double-flush-entry"):
                runtime.clwb(entry.addr, AtomicEntry.SIZE)
            runtime.sfence()
        # 2. Publication.
        runtime.store_u64(head_addr, entry.addr)
        runtime.clwb(head_addr, 8)
        if self._fault("double-flush-head"):
            runtime.clwb(head_addr, 8)
        if not self._fault("no-publish-fence"):
            runtime.sfence()
        # 3. Count.
        count_addr, _ = self.table.field_range("count")
        self.table.count = self.table.count + 1
        if not self._fault("count-no-flush"):
            runtime.clwb(count_addr, 8)
        runtime.sfence()
        # Self-annotation: the crash-consistency requirements of the
        # publication protocol, stated with the two low-level checkers.
        if session is not None:
            session.is_ordered_before(
                entry.addr, AtomicEntry.SIZE, head_addr, 8
            )
            session.is_ordered_before(head_addr, 8, count_addr, 8)
            session.is_persist(head_addr, 8)
            session.is_persist(count_addr, 8)

    def lookup(self, key: int) -> Optional[bytes]:
        entry = self._find(key)
        if entry is None:
            return None
        return ValueBuffer(self.pool, entry.value).read()

    def remove(self, key: int) -> bool:
        runtime = self.pool.runtime
        head_addr = self._bucket_addr(key)
        prev_slot = head_addr
        cursor = runtime.load_u64(head_addr)
        while cursor:
            entry = AtomicEntry(self.pool, cursor)
            if entry.key == key:
                runtime.store_u64(prev_slot, entry.next)
                runtime.persist(prev_slot, 8)
                count_addr, _ = self.table.field_range("count")
                self.table.count = self.table.count - 1
                runtime.persist(count_addr, 8)
                return True
            prev_slot, _ = entry.field_range("next")
            cursor = entry.next
        return False

    def items(self) -> Iterator[Tuple[int, bytes]]:
        runtime = self.pool.runtime
        for index in range(self.table.nbuckets):
            cursor = runtime.load_u64(self.table.buckets + index * 8)
            while cursor:
                entry = AtomicEntry(self.pool, cursor)
                yield entry.key, ValueBuffer(self.pool, entry.value).read()
                cursor = entry.next


def validate_image(image: PMImage, root_addr_value: int) -> bool:
    """Crash-image consistency for the atomic map.

    Published entries must be complete (non-null value pointer), chains
    acyclic, and the persisted count may lag the reachable count by at
    most the one in-flight insert (count persists after publication).
    """
    table_addr = root_addr_value
    if table_addr == 0:
        return True
    nbuckets = image.read_u64(table_addr)
    count = image.read_u64(table_addr + 8)
    buckets = image.read_u64(table_addr + 16)
    if nbuckets == 0 or nbuckets > 1 << 20 or buckets == 0:
        return False
    seen = set()
    reachable = 0
    for index in range(nbuckets):
        cursor = image.read_u64(buckets + index * 8)
        while cursor:
            if cursor in seen or cursor + 24 > len(image):
                return False
            seen.add(cursor)
            if image.read_u64(cursor + 16) == 0:
                return False  # published but incomplete entry
            reachable += 1
            cursor = image.read_u64(cursor + 8)
    return count <= reachable <= count + 1
