"""Bounded kernel-FIFO channel for kernel-module integration.

PMFS-style kernel modules cannot run the checking engine in kernel space,
so PMTest passes traces to the user-space engine through a kernel FIFO
(``/proc/PMTest``) of 1024 entries, and parks the kernel module on an
interruptible wait queue when the FIFO fills, waking it once the FIFO is
less than half full (paper Section 4.5).

This module simulates that channel: a bounded deque with hysteresis-based
backpressure.  The producer (the simulated kernel module) blocks in
:meth:`KernelFifo.put` when full and is only released once the consumer
has drained the FIFO below half capacity — exactly the paper's wake-up
condition, which avoids thrashing at the full mark.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Generic, Optional, TypeVar

T = TypeVar("T")

#: The paper's FIFO depth for /proc/PMTest.
DEFAULT_CAPACITY = 1024


class FifoClosed(Exception):
    """The channel was closed while an operation was blocked on it."""


class KernelFifo(Generic[T]):
    """Bounded FIFO with half-full wake-up hysteresis."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 2:
            raise ValueError("capacity must be at least 2")
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._below_half = threading.Condition(self._lock)
        self._closed = False
        #: number of times a producer had to park (observability for tests
        #: and for the kernel-integration benchmark)
        self.producer_waits = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # ------------------------------------------------------------------
    def put(self, item: T) -> None:
        """Enqueue; block on the wait queue while the FIFO is full.

        A parked producer resumes only once the FIFO has drained below
        half capacity (the paper's interruptible wait queue behaviour).
        """
        with self._lock:
            if len(self._items) >= self.capacity:
                self.producer_waits += 1
                while not self._closed and len(self._items) >= self.capacity // 2:
                    self._below_half.wait()
            if self._closed:
                raise FifoClosed("put on closed kernel FIFO")
            self._items.append(item)
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> T:
        """Dequeue; block while empty.  Raises :class:`FifoClosed` when the
        channel is closed and drained."""
        with self._lock:
            while not self._items:
                if self._closed:
                    raise FifoClosed("kernel FIFO closed and empty")
                if not self._not_empty.wait(timeout=timeout):
                    raise TimeoutError("kernel FIFO get timed out")
            item = self._items.popleft()
            if len(self._items) < self.capacity // 2:
                self._below_half.notify_all()
            return item

    def close(self) -> None:
        """Close the channel, waking all blocked producers and consumers."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._below_half.notify_all()
