"""The Mnemosyne-style raw word log (redo logging).

Mnemosyne makes multi-word updates failure atomic with an append-only
*raw word log*: the new values are appended as ``(addr, value)`` word
records, flushed (``log_flush``), and committed by persisting the record
count; only then are the in-place stores performed.  Crash recovery
*redoes* a committed log and discards an uncommitted one.

Log region layout (all u64)::

    +-----------+------------------------------------------+
    | committed |  records: addr0, val0, addr1, val1, ...  |
    +-----------+------------------------------------------+

``committed`` is the number of committed records (0 = log empty).  The
commit store is the transaction's atomic switch point: it is 8 bytes and
therefore persists atomically.

Fault injection (for the synthetic-bug corpus):

``no-log-flush``     records are not flushed before the commit marker
``no-commit-fence``  the commit marker is not fenced before the in-place
                     stores
``apply-no-flush``   in-place stores are not flushed at the end
"""

from __future__ import annotations

from typing import List, Tuple

from repro.instr.runtime import PMRuntime
from repro.pmem.memory import PMImage

KNOWN_FAULTS = frozenset({"no-log-flush", "no-commit-fence", "apply-no-flush"})


class LogFull(Exception):
    """The raw word log cannot hold more records."""


class RawWordLog:
    """An append/flush/commit redo log over a PM region."""

    def __init__(
        self,
        runtime: PMRuntime,
        base: int,
        capacity: int,
        faults: Tuple[str, ...] = (),
    ) -> None:
        unknown = set(faults) - KNOWN_FAULTS
        if unknown:
            raise ValueError(f"unknown log faults: {sorted(unknown)}")
        if capacity < 24:
            raise ValueError("log region too small for a single record")
        self.runtime = runtime
        self.base = base
        self.capacity = capacity
        self.faults = frozenset(faults)
        #: records appended but not yet committed (volatile mirror)
        self._pending: List[Tuple[int, int]] = []

    @property
    def max_records(self) -> int:
        return (self.capacity - 8) // 16

    # ------------------------------------------------------------------
    def append(self, addr: int, value: int) -> None:
        """``log_append``: stage one word update in the log."""
        index = len(self._pending)
        if index >= self.max_records:
            raise LogFull(f"log holds at most {self.max_records} records")
        record_addr = self.base + 8 + index * 16
        self.runtime.store_u64(record_addr, addr)
        self.runtime.store_u64(record_addr + 8, value)
        self._pending.append((addr, value))

    def log_flush(self) -> None:
        """``log_flush``: make the staged records durable."""
        if not self._pending:
            return
        if "no-log-flush" not in self.faults:
            self.runtime.clwb(self.base + 8, len(self._pending) * 16)
            self.runtime.sfence()

    def commit(self) -> None:
        """Commit and apply: persist the count, redo in place, truncate."""
        if not self._pending:
            return
        runtime = self.runtime
        # 1. The atomic switch: the record count.
        runtime.store_u64(self.base, len(self._pending))
        runtime.clwb(self.base, 8)
        if "no-commit-fence" not in self.faults:
            runtime.sfence()
        # 2. Redo in place.
        for addr, value in self._pending:
            runtime.store_u64(addr, value)
            if "apply-no-flush" not in self.faults:
                runtime.clwb(addr, 8)
        runtime.sfence()
        # The protocol's crash-consistency requirements, self-annotated
        # with the low-level checkers (library-developer instrumentation,
        # paper Section 7.2): records persist before the commit marker,
        # and the marker before every in-place redo.
        session = runtime.session
        if session is not None:
            session.is_ordered_before(
                self.base + 8, len(self._pending) * 16, self.base, 8
            )
            for addr, _ in self._pending:
                session.is_ordered_before(self.base, 8, addr, 8)
                session.is_persist(addr, 8)
        # 3. Truncate the log.
        runtime.store_u64(self.base, 0)
        runtime.clwb(self.base, 8)
        runtime.sfence()
        self._pending.clear()

    def abandon(self) -> None:
        """Drop staged records without committing."""
        self._pending.clear()

    # ------------------------------------------------------------------
    def update(self, words: List[Tuple[int, int]]) -> None:
        """One failure-atomic multi-word update (append/flush/commit)."""
        for addr, value in words:
            self.append(addr, value)
        self.log_flush()
        self.commit()


def replay_log(image: PMImage, log_base: int) -> int:
    """Offline recovery: redo a committed log found in a crash image.

    Returns the number of records replayed (0 if the log was empty or
    uncommitted).
    """
    committed = image.read_u64(log_base)
    if committed == 0:
        return 0
    for index in range(committed):
        record_addr = log_base + 8 + index * 16
        addr = image.read_u64(record_addr)
        value = image.read_u64(record_addr + 8)
        image.write_u64(addr, value)
    image.write_u64(log_base, 0)
    return committed
