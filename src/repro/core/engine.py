"""The checking engine: replays one trace and validates its checkers.

The engine walks a trace in program order (paper Section 4.4).  PM
operations update the shadow memory through the active persistency-model
rules; checker records are validated against the shadow's persist
intervals.  Orthogonally to the model rules, the engine implements the
transaction machinery of Section 5.1: the log tree for ``TX_ADD``
backups, the modified-object set for transaction-completeness checking,
and the testing-scope exclusion list (``PMTest_EXCLUDE``).

Each trace is checked against a fresh shadow memory — traces are
independent units, split by the program at ``PMTest_SEND_TRACE`` points
(typically transaction boundaries).
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Iterable, List, Optional, Tuple

from repro.core.events import (
    CHECKER_OPS,
    Event,
    FENCE_OPS,
    FLUSH_OPS,
    Op,
    SourceSite,
    Trace,
)
from repro.core.interval_map import IntervalMap, QueryStats
from repro.core.logtree import LogTree
from repro.core.metrics import MetricsRegistry
from repro.core.reports import Level, Report, ReportCode, TestResult
from repro.core.rules import PersistencyRules, X86Rules


class MalformedTrace(Exception):
    """The trace violates structural invariants (e.g. unbalanced TX_END).

    This indicates broken instrumentation of the program under test, not a
    crash-consistency bug, so it raises instead of reporting.
    """


class CheckingEngine:
    """Validates traces under a persistency model's checking rules.

    ``metrics`` (a :class:`~repro.core.metrics.MetricsRegistry`, or
    ``None``) selects the instrumentation level once per trace: with no
    registry the replay loop is the historical unhooked one, at
    ``basic`` per-opcode counters are kept, and at ``full`` every
    dispatch is timed and attributed to its pipeline stage.
    """

    def __init__(
        self,
        rules: Optional[PersistencyRules] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.rules = rules if rules is not None else X86Rules()
        self.metrics = metrics

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def check_trace(self, trace: Trace) -> TestResult:
        """Replay one trace; return all FAIL/WARN reports."""
        return _TraceChecker(self.rules, trace, self.metrics).run()

    def check_traces(self, traces: Iterable[Trace]) -> TestResult:
        """Replay several independent traces and merge their results."""
        total = TestResult()
        for trace in traces:
            total.merge(self.check_trace(trace))
        return total


class _TraceChecker:
    """State for checking a single trace (one shadow memory)."""

    def __init__(
        self,
        rules: PersistencyRules,
        trace: Trace,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.rules = rules
        self.trace = trace
        self.trace_id = trace.trace_id
        self.shadow = rules.make_shadow()
        self.metrics = metrics
        self.result = TestResult(traces_checked=1)
        # Transaction machinery (Section 5.1)
        self.tx_depth = 0
        self.log_tree = LogTree()
        self.tx_check_active = False
        self.tx_check_site: Optional[SourceSite] = None
        #: ranges modified inside the current TX_CHECKER scope -> write site
        self.modified: IntervalMap[Optional[SourceSite]] = IntervalMap()
        #: ranges excluded from the testing scope (PMTest_EXCLUDE)
        self.excluded: IntervalMap[bool] = IntervalMap()

    # ------------------------------------------------------------------
    def run(self) -> TestResult:
        events = self.trace.events
        result = self.result
        # One branch per trace picks the replay loop; the metrics-off
        # path below is the historical unhooked loop, untouched.
        metrics = self.metrics
        if metrics is None:
            self._run_plain(events)
            self._finish()
        elif metrics.full:
            qstats = QueryStats()
            self.shadow.pm.stats = qstats
            shadow_ns, shadow_n, checker_ns, checker_n = self._run_timed(
                events, metrics
            )
            # The implicit close of an open checker scope is checker work.
            t0 = perf_counter_ns()
            self._finish()
            checker_ns += perf_counter_ns() - t0
            counter = metrics.counter
            counter("stage.shadow_update.ns").inc(shadow_ns)
            counter("stage.shadow_update.count").inc(shadow_n)
            counter("stage.checker_validate.ns").inc(checker_ns)
            counter("stage.checker_validate.count").inc(checker_n)
            counter("engine.interval_queries").inc(qstats.queries)
            counter("engine.interval_scanned").inc(qstats.scanned)
            metrics.gauge("engine.shadow_segments").observe(len(self.shadow.pm))
        else:
            self._run_counted(events, metrics)
            self._finish()
        result.events_checked += len(events)
        if metrics is not None:
            counter = metrics.counter
            counter("engine.traces").inc(1)
            counter("engine.events").inc(len(events))
            counter("engine.checkers").inc(result.checkers_evaluated)
            counter("engine.reports").inc(len(result.reports))
        # Engine-made reports carry the trace id already; only reports
        # produced by the (trace-id-agnostic) rules need the rewrap.
        trace_id = self.trace_id
        reports = result.reports
        for i, report in enumerate(reports):
            if report.trace_id == -1:
                reports[i] = _with_trace_id(report, trace_id)
        return result

    # ------------------------------------------------------------------
    # Replay loops (one per metrics level)
    # ------------------------------------------------------------------
    def _run_plain(self, events: List[Event]) -> None:
        """The historical unhooked replay loop (metrics off)."""
        handlers = self._HANDLERS
        for event in events:
            handler = handlers.get(event.op)
            if handler is None:
                raise MalformedTrace(f"unknown trace op {event.op!r}")
            handler(self, event)

    def _run_counted(self, events: List[Event], metrics: MetricsRegistry) -> None:
        """Basic level: per-opcode counts, no timing."""
        handlers = self._HANDLERS
        op_counts: dict = {}
        for event in events:
            op = event.op
            handler = handlers.get(op)
            if handler is None:
                raise MalformedTrace(f"unknown trace op {op!r}")
            op_counts[op] = op_counts.get(op, 0) + 1
            handler(self, event)
        for op, count in op_counts.items():
            metrics.counter(f"engine.op.{op.name}").inc(count)

    def _run_timed(
        self, events: List[Event], metrics: MetricsRegistry
    ) -> Tuple[int, int, int, int]:
        """Full level: per-dispatch timing attributed to pipeline stages.

        Returns ``(shadow_ns, shadow_n, checker_ns, checker_n)`` — the
        caller folds the implicit end-of-trace checker close into the
        checker stage before flushing the stage counters.
        """
        handlers = self._HANDLERS
        checker_ops = CHECKER_OPS
        clock = perf_counter_ns
        op_counts: dict = {}
        histograms: dict = {}
        shadow_ns = shadow_n = checker_ns = checker_n = 0
        for event in events:
            op = event.op
            handler = handlers.get(op)
            if handler is None:
                raise MalformedTrace(f"unknown trace op {op!r}")
            op_counts[op] = op_counts.get(op, 0) + 1
            start = clock()
            handler(self, event)
            elapsed = clock() - start
            histogram = histograms.get(op)
            if histogram is None:
                histogram = histograms[op] = metrics.histogram(
                    f"engine.op_ns.{op.name}"
                )
            histogram.record(elapsed)
            if op in checker_ops:
                checker_ns += elapsed
                checker_n += 1
            else:
                shadow_ns += elapsed
                shadow_n += 1
        for op, count in op_counts.items():
            metrics.counter(f"engine.op.{op.name}").inc(count)
        return shadow_ns, shadow_n, checker_ns, checker_n

    # ------------------------------------------------------------------
    # PM operations
    # ------------------------------------------------------------------
    def _on_write(self, event: Event) -> None:
        if not self.excluded:
            # Common case: no exclusions — no gap scan, no subrange
            # Event reallocation.
            self.result.reports.extend(self.rules.apply_op(self.shadow, event))
            if self.tx_check_active:
                self._track_tx_write(event.addr, event.end, event)
            return
        for lo, hi in self.excluded.gaps(event.addr, event.end):
            sub = self._subrange_event(event, lo, hi)
            self.result.reports.extend(self.rules.apply_op(self.shadow, sub))
            if self.tx_check_active:
                self._track_tx_write(lo, hi, event)

    def _track_tx_write(self, lo: int, hi: int, event: Event) -> None:
        self.modified.assign(lo, hi, event.site)
        if self.tx_depth > 0:
            for bad_lo, bad_hi in self.log_tree.uncovered(lo, hi):
                self.result.reports.append(
                    Report(
                        level=Level.FAIL,
                        code=ReportCode.MISSING_LOG,
                        message=(
                            f"transaction modifies [{bad_lo:#x}, "
                            f"{bad_hi:#x}) without a prior TX_ADD "
                            "backup; it cannot be rolled back"
                        ),
                        site=event.site,
                        trace_id=self.trace_id,
                        seq=event.seq,
                    )
                )

    def _apply_in_scope(self, event: Event) -> None:
        if not self.excluded:
            self.result.reports.extend(self.rules.apply_op(self.shadow, event))
            return
        for lo, hi in self.excluded.gaps(event.addr, event.end):
            sub = self._subrange_event(event, lo, hi)
            self.result.reports.extend(self.rules.apply_op(self.shadow, sub))

    def _on_fence(self, event: Event) -> None:
        self.result.reports.extend(self.rules.apply_op(self.shadow, event))

    # ------------------------------------------------------------------
    # Scope bookkeeping
    # ------------------------------------------------------------------
    def _on_exclude(self, event: Event) -> None:
        self.excluded.assign(event.addr, event.end, True)
        if self.tx_check_active:
            self.modified.erase(event.addr, event.end)

    def _on_include(self, event: Event) -> None:
        self.excluded.erase(event.addr, event.end)

    # ------------------------------------------------------------------
    # Checkers
    # ------------------------------------------------------------------
    def _on_check_persist(self, event: Event) -> None:
        self.result.checkers_evaluated += 1
        self.result.reports.extend(self.rules.check_persist(self.shadow, event))

    def _on_check_order(self, event: Event) -> None:
        self.result.checkers_evaluated += 1
        self.result.reports.extend(self.rules.check_order(self.shadow, event))

    def _on_tx_check_start(self, event: Event) -> None:
        self.tx_check_active = True
        self.tx_check_site = event.site
        self.modified.clear()

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def _on_tx_begin(self, event: Event) -> None:
        self.tx_depth += 1
        if self.tx_depth == 1:
            self.log_tree.reset()

    def _on_tx_end(self, event: Event) -> None:
        if self.tx_depth == 0:
            raise MalformedTrace(f"TX_END without TX_BEGIN at {event.site}")
        self.tx_depth -= 1

    def _on_tx_add(self, event: Event) -> None:
        duplicates = self.log_tree.add(event.addr, event.end, event.site)
        if not self.tx_check_active:
            return
        for lo, hi, first_site in duplicates:
            where = f" (first logged at {first_site})" if first_site else ""
            self.result.reports.append(
                Report(
                    level=Level.WARN,
                    code=ReportCode.DUP_LOG,
                    message=(
                        f"[{lo:#x}, {hi:#x}) is logged more than once in "
                        f"the same transaction{where}"
                    ),
                    site=event.site,
                    trace_id=self.trace_id,
                    seq=event.seq,
                )
            )

    def _on_tx_check_end_event(self, event: Event) -> None:
        self._on_tx_check_end(event.site, event.seq)

    def _on_tx_check_end(self, site: Optional[SourceSite], seq: int) -> None:
        self.result.checkers_evaluated += 1
        self.tx_check_active = False
        if self.tx_depth > 0:
            self.result.reports.append(
                Report(
                    level=Level.FAIL,
                    code=ReportCode.INCOMPLETE_TX,
                    message=(
                        "transaction is still open at the end of the "
                        "checked scope; it was not properly terminated"
                    ),
                    site=site,
                    trace_id=self.trace_id,
                    seq=seq,
                )
            )
        # The injected isPersist over every modified (non-excluded) object
        # (paper Section 5.1.1, "Check Incomplete Transactions").
        # ``persist_intervals`` only reads ``self.modified``, so iterate
        # it directly — no defensive copy.
        for lo, hi, write_site in self.modified:
            for sub_lo, sub_hi, interval, state in self.rules.persist_intervals(
                self.shadow, lo, hi
            ):
                if not interval.ends_by(self.shadow.timestamp):
                    self.result.reports.append(
                        Report(
                            level=Level.FAIL,
                            code=ReportCode.TX_NOT_PERSISTED,
                            message=(
                                f"transaction update to [{sub_lo:#x}, "
                                f"{sub_hi:#x}) {interval} is not "
                                "guaranteed durable when the transaction "
                                "scope ends"
                            ),
                            site=site,
                            related_site=state.write_site or write_site,
                            trace_id=self.trace_id,
                            seq=seq,
                        )
                    )
        self.modified.clear()

    def _finish(self) -> None:
        """End-of-trace handling: an open checker scope is closed implicitly."""
        if self.tx_check_active:
            self._on_tx_check_end(self.tx_check_site, len(self.trace.events))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _subrange_event(event: Event, lo: int, hi: int) -> Event:
        if lo == event.addr and hi == event.end:
            return event
        return Event(event.op, lo, hi - lo, site=event.site, seq=event.seq)

    # Per-op dispatch table (the hot path in ``run``).  Built in the
    # class body so entries are plain functions called as
    # ``handler(self, event)``.
    _HANDLERS = {
        Op.WRITE: _on_write,
        Op.WRITE_NT: _on_write,
        Op.TX_BEGIN: _on_tx_begin,
        Op.TX_END: _on_tx_end,
        Op.TX_ADD: _on_tx_add,
        Op.EXCLUDE: _on_exclude,
        Op.INCLUDE: _on_include,
        Op.CHECK_PERSIST: _on_check_persist,
        Op.CHECK_ORDER: _on_check_order,
        Op.TX_CHECK_START: _on_tx_check_start,
        Op.TX_CHECK_END: _on_tx_check_end_event,
    }
    for _op in FLUSH_OPS:
        _HANDLERS[_op] = _apply_in_scope
    for _op in FENCE_OPS:
        _HANDLERS[_op] = _on_fence
    del _op


def _with_trace_id(report: Report, trace_id: int) -> Report:
    return Report(
        level=report.level,
        code=report.code,
        message=report.message,
        site=report.site,
        related_site=report.related_site,
        trace_id=trace_id,
        seq=report.seq,
    )
