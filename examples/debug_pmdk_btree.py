#!/usr/bin/env python3
"""Find the paper's two new PMDK B-tree bugs with the TX checkers.

Table 6's new bugs 2 and 3 live in PMDK's btree_map example:

* btree_map.c:201 — ``create_split_node`` modifies a tree node without
  logging it first (a correctness bug: the node cannot be rolled back);
* btree_map.c:367 — ``rotate_left`` logs a node that the insert_item
  helper it calls already logged (a performance bug: duplicate log).

With the high-level transaction checkers wrapped around each operation
("we found the two new bugs ... by placing a pair of TX_CHECKER_START
and TX_CHECKER_END around the outermost transaction"), PMTest reports
both — including, with site capture on, the exact source line.

Run:  python examples/debug_pmdk_btree.py
"""

from repro.core.api import PMTestSession
from repro.instr.runtime import PMRuntime
from repro.pmem.machine import PMMachine
from repro.pmdk.pool import PMPool
from repro.structures import BTree


def run(faults, workload) -> None:
    session = PMTestSession(workers=0, capture_sites=True)
    session.thread_init()
    session.start()
    runtime = PMRuntime(
        machine=PMMachine(16 << 20), session=session, capture_sites=True
    )
    pool = PMPool(runtime, log_capacity=512 * 1024)
    tree = BTree(pool, value_size=32, faults=faults)
    session.send_trace()  # keep pool/tree setup out of the checked traces

    for op, key in workload:
        session.tx_check_start()  # TX_CHECKER_START
        if op == "insert":
            tree.insert(key)
        else:
            tree.remove(key)
        session.tx_check_end()  # TX_CHECKER_END
        session.send_trace()  # PMTest_SEND_TRACE

    result = session.exit()
    label = ", ".join(faults) if faults else "no bugs injected"
    print(f"--- B-tree with [{label}]: {result.summary()}")
    seen = set()
    for report in result.reports:
        line = f"    {report}"
        if line not in seen:
            seen.add(line)
            print(line)
    print()


if __name__ == "__main__":
    print(__doc__)
    inserts = [("insert", key) for key in range(12)]
    removes = [("remove", key) for key in range(0, 12, 2)]

    # Clean library: nothing to report.
    run((), inserts + removes)
    # Bug 2: the unlogged modification in create_split_node.
    run(("split-no-log",), inserts)
    # Bug 3: the duplicate TX_ADD in rotate_left (exercised by deletes).
    run(("rotate-dup-log",), inserts + removes)
