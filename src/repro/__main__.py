"""``python -m repro`` — the offline trace-checking CLI."""

import sys

from repro.cli import main

sys.exit(main())
