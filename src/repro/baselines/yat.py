"""A Yat-like exhaustive crash tester.

Yat (Lantz et al., ATC '14) validates PMFS by *enumerating persist
reorderings*: at chosen crash points it materializes every PM image the
hardware could leave behind and runs the filesystem's recovery +
consistency check against each.  Complete, but exponential — the paper
quotes more than five years for a 100k-operation trace.

This reimplementation replays a machine op log (recorded with
``PMMachine(record_ops=True)``), and at every fence (or every op)
enumerates the reachable crash images via
:class:`~repro.pmem.crash.CrashEnumerator` and applies a caller-supplied
``recover`` / ``validate`` pair.  A state budget makes the exponential
blow-up explicit: when the budget is exceeded the run aborts with the
would-be state count, which the Table 1 benchmark uses to extrapolate
Yat's runtime the same way the paper does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.pmem.crash import CrashEnumerator
from repro.pmem.machine import OpRecord, PMMachine
from repro.pmem.memory import PMImage

#: ``recover(image) -> None`` run before validation (may be ``None``).
RecoverFn = Callable[[PMImage], object]
#: ``validate(image) -> bool`` — the consistency predicate.
ValidateFn = Callable[[PMImage], bool]


class YatBudgetExceeded(Exception):
    """The crash-state space exceeded the configured budget."""

    def __init__(self, states_needed: int, budget: int) -> None:
        super().__init__(
            f"would need {states_needed} crash states (budget {budget})"
        )
        self.states_needed = states_needed
        self.budget = budget


@dataclass
class YatReport:
    """Outcome of one Yat run."""

    crash_points: int = 0
    states_tested: int = 0
    violations: List[Tuple[int, str]] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    aborted: bool = False
    states_needed: int = 0  # on abort: the size of the state space

    @property
    def consistent(self) -> bool:
        return not self.violations and not self.aborted


class YatTester:
    """Exhaustive crash testing over a recorded op log."""

    def __init__(
        self,
        memory_size: int,
        validate: ValidateFn,
        recover: Optional[RecoverFn] = None,
        state_budget: int = 1 << 16,
        crash_at: str = "fences",
        base_image: Optional[PMImage] = None,
    ) -> None:
        """``base_image`` is the quiescent checkpoint the op log was
        recorded from (see :meth:`PMMachine.begin_oplog`); replay starts
        there instead of from zeroed memory."""
        if crash_at not in ("fences", "ops"):
            raise ValueError("crash_at must be 'fences' or 'ops'")
        self.memory_size = memory_size
        self.validate = validate
        self.recover = recover
        self.state_budget = state_budget
        self.crash_at = crash_at
        self.base_image = base_image

    # ------------------------------------------------------------------
    def run(self, oplog: Sequence[OpRecord]) -> YatReport:
        """Replay the op log, exhaustively crash-testing along the way."""
        report = YatReport()
        start = time.perf_counter()
        machine = self._fresh_machine()
        try:
            for index, record in enumerate(oplog):
                _apply(machine, record)
                if self.crash_at == "fences" and record[0] != "sfence":
                    continue
                self._test_point(machine, index, report)
            # Always test the final state as well.
            self._test_point(machine, len(oplog), report)
        except YatBudgetExceeded as exceeded:
            report.aborted = True
            report.states_needed = exceeded.states_needed
        report.elapsed_seconds = time.perf_counter() - start
        return report

    def state_count(self, oplog: Sequence[OpRecord]) -> int:
        """Total crash states across all crash points (no validation).

        This is the quantity that explodes: the Table 1 benchmark uses it
        to extrapolate full-Yat runtime from a measured per-state cost.
        """
        total = 0
        machine = self._fresh_machine()
        for record in oplog:
            _apply(machine, record)
            if self.crash_at == "fences" and record[0] != "sfence":
                continue
            total += CrashEnumerator(machine).count()
        total += CrashEnumerator(machine).count()
        return total

    # ------------------------------------------------------------------
    def _fresh_machine(self) -> PMMachine:
        if self.base_image is not None:
            return PMMachine.from_image(self.base_image)
        return PMMachine(self.memory_size)

    def _test_point(self, machine: PMMachine, index: int,
                    report: YatReport) -> None:
        enumerator = CrashEnumerator(machine)
        count = enumerator.count()
        if report.states_tested + count > self.state_budget:
            raise YatBudgetExceeded(report.states_tested + count,
                                    self.state_budget)
        report.crash_points += 1
        for image in enumerator.iter_images():
            report.states_tested += 1
            if self.recover is not None:
                self.recover(image)
            if not self.validate(image):
                report.violations.append(
                    (index, f"inconsistent crash state at op {index}")
                )


def _apply(machine: PMMachine, record: OpRecord) -> None:
    kind, addr, payload = record
    if kind == "store":
        machine.store(addr, payload)  # type: ignore[arg-type]
    elif kind == "store_nt":
        machine.store(addr, payload, nt=True)  # type: ignore[arg-type]
    elif kind == "flush":
        machine.flush(addr, payload)  # type: ignore[arg-type]
    elif kind == "sfence":
        machine.sfence()
    elif kind == "ofence":
        machine.ofence()
    elif kind == "dfence":
        machine.dfence()
    else:  # pragma: no cover - closed vocabulary
        raise ValueError(f"unknown op record {kind!r}")
