"""Canonical trace form: relocatable renaming plus a structural fingerprint.

The redis- and memcached-style workloads emit thousands of structurally
identical traces: the same op skeleton over different base addresses
(each insert touches a freshly allocated node).  The checking verdict is
a pure function of the trace, and — because every shadow-memory
operation is driven by segment *ordering and overlap*, never by absolute
address values — it is invariant under any renaming that maps each
contiguous address cluster by a constant offset.  This module computes
that renaming:

* Pass 1 collects every address range an event touches and merges
  overlapping **and touching** ranges into maximal segments.  An event
  range is contiguous, so it always lands inside exactly one segment,
  which means segments never interact during replay: the verdict only
  depends on offsets *within* each segment.
* Pass 2 streams the renamed events through the binary codec's
  flag-packed per-event layout (the flag bits are
  :data:`repro.core.traceio._EV_RANGE1` and friends, reused verbatim)
  and hashes the bytes with blake2b.  Addresses are encoded as
  ``(segment index, offset within segment)`` pairs — the cheapest
  bijective spelling of the canonical renaming, one or two varint
  bytes instead of the seven a 47-bit canonical address would cost on
  the fingerprint hot path.  Source sites are interned verbatim — two
  traces only share a fingerprint when their reports would point at
  the same code.

The resulting :class:`CanonicalForm` carries the fingerprint (the
verdict-cache key) and the :class:`Relocation` table that maps addresses
— and the ``{:#x}``-formatted hex literals embedded in report messages —
between the original and canonical address spaces in both directions.

Mapping uses *closed* ranges ``[lo, hi]``: report messages print the
exclusive end of half-open ranges, which for a segment-spanning range is
the segment end itself.  The canonical inter-segment gap keeps those
closed ranges disjoint.
"""

from __future__ import annotations

import re
from bisect import bisect_right
from hashlib import blake2b
from typing import List, Optional, Sequence, Tuple

from repro.core.events import Event, Op
from repro.core.traceio import _EV_RANGE1, _EV_RANGE2, _EV_SEQ, _EV_SITE

#: Base of the canonical address space: far above any address a
#: simulated PM pool hands out, so canonical hex literals can never be
#: mistaken for original ones while validating a template round trip.
CANON_BASE = 1 << 47

#: Gap between canonical segments.  Any value >= 1 preserves
#: disjointness of the closed mapping ranges; a page keeps canonical
#: dumps readable.
CANON_GAP = 1 << 12

#: ``Op -> wire value`` resolved once: ``event.op.value`` costs two
#: descriptor lookups per event on the fingerprint hot path.
_OP_VALUE = {op: op.value for op in Op}

#: Hex literals as ``format(value, "#x")`` prints them (lowercase, no
#: padding) — the one way addresses ever appear in report messages.
_HEX_RE = re.compile(r"0x[0-9a-f]+")


class Relocation:
    """Bidirectional per-segment affine address mapping.

    ``segments`` is a sorted list of ``(orig_lo, orig_hi, canon_lo)``
    with half-open ``[orig_lo, orig_hi)`` extents; lookups accept the
    closed range ``[lo, hi]`` in either space (see module docstring).
    """

    __slots__ = ("segments", "_orig_los", "_canon_los")

    def __init__(self, segments: List[Tuple[int, int, int]]) -> None:
        self.segments = segments
        self._orig_los = [lo for lo, _, _ in segments]
        self._canon_los = [canon for _, _, canon in segments]

    def __len__(self) -> int:
        return len(self.segments)

    def to_canon(self, value: int) -> Optional[int]:
        """Map an original address to canonical space (``None``: unmapped)."""
        i = _bisect(self._orig_los, value)
        if i >= 0:
            lo, hi, canon = self.segments[i]
            if value <= hi:  # closed range: the exclusive end maps too
                return canon + (value - lo)
        return None

    def to_orig(self, value: int) -> Optional[int]:
        """Map a canonical address back to the original space."""
        i = _bisect(self._canon_los, value)
        if i >= 0:
            lo, hi, canon = self.segments[i]
            if value <= canon + (hi - lo):
                return lo + (value - canon)
        return None

    # ------------------------------------------------------------------
    def rewrite_to_canon(self, message: str) -> Optional[str]:
        """Rewrite every hex literal in ``message`` into canonical space.

        Returns ``None`` when any literal falls outside the relocation
        table — the caller must treat the report as non-relocatable.
        """
        return _rewrite(message, self.to_canon)

    def rewrite_to_orig(self, message: str) -> Optional[str]:
        """Rewrite every hex literal back into the original space."""
        return _rewrite(message, self.to_orig)


def _bisect(los: List[int], value: int) -> int:
    """Index of the last entry with ``lo <= value`` (or -1)."""
    return bisect_right(los, value) - 1


def _rewrite(message: str, mapper) -> Optional[str]:
    ok = True

    def replace(match: "re.Match[str]") -> str:
        nonlocal ok
        mapped = mapper(int(match.group(0), 16))
        if mapped is None:
            ok = False
            return match.group(0)
        return format(mapped, "#x")

    out = _HEX_RE.sub(replace, message)
    return out if ok else None


class CanonicalForm:
    """A trace's structural fingerprint plus its relocation table."""

    __slots__ = ("fingerprint", "relocation")

    def __init__(self, fingerprint: bytes, relocation: Relocation) -> None:
        self.fingerprint = fingerprint
        self.relocation = relocation


def collect_segments(events: Sequence[Event]) -> List[Tuple[int, int]]:
    """Maximal merged address ranges the events touch, sorted.

    Overlapping and *touching* ranges merge: two clusters separated by
    even one byte stay separate segments (their relative distance can
    never influence the verdict), while touching ranges must share a
    segment so their relative offset is pinned by the canonical form.
    """
    # Dedup first: flush/check events revisit the ranges writes already
    # pinned, so the sort sees each distinct range once.  ``end`` is a
    # property — computing ``addr + size`` inline keeps this pass cheap
    # on the cache hot path.
    distinct = set()
    add = distinct.add
    for event in events:
        addr = event.addr
        size = event.size
        if addr or size:
            # A zero-size range still pins its address (the replay will
            # reject it, but the fingerprint must see it).
            add((addr, addr + size if size > 0 else addr + 1))
        addr = event.addr2
        size = event.size2
        if addr or size:
            add((addr, addr + size if size > 0 else addr + 1))
    if not distinct:
        return []
    ranges = sorted(distinct)
    merged: List[Tuple[int, int]] = [ranges[0]]
    for lo, hi in ranges[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi:  # overlap or touch
            if hi > last_hi:
                merged[-1] = (last_lo, hi)
        else:
            merged.append((lo, hi))
    return merged


def canonicalize(events: Sequence[Event]) -> CanonicalForm:
    """Compute the canonical fingerprint and relocation for ``events``.

    ``events`` is the exact list the engine will replay (after any
    write-coalescing), so equal fingerprints mean equal replays up to
    the relocation.  Trace id and thread name are deliberately absent:
    they never influence the verdict beyond the trace-id rewrap, which
    the cache re-applies on rehydration.

    The encoder is deliberately hand-inlined: this runs once per trace
    on the cache hot path, where every per-event function call shows up
    directly as lost hit-path speedup.  The byte layout per event is
    traceio's flag scheme — ``flags, op``, then for each flagged range
    ``segment-index, offset, size`` varints, then the interned site
    index and explicit seq — followed by the site string table.
    """
    merged = collect_segments(events)
    segments: List[Tuple[int, int, int]] = []
    base = CANON_BASE
    for lo, hi in merged:
        segments.append((lo, hi, base))
        base += (hi - lo) + CANON_GAP
    relocation = Relocation(segments)
    los = relocation._orig_los
    buf = bytearray()
    append = buf.append
    site_ids: dict = {}
    # Identity overlay over the content-keyed intern table: tracers
    # reuse one SourceSite object per call site, and the frozen
    # dataclass recomputes its tuple hash on every content lookup.
    site_ref_by_id: dict = {}
    index = 0
    for event in events:
        addr = event.addr
        size = event.size
        addr2 = event.addr2
        size2 = event.size2
        site = event.site
        seq = event.seq
        flags = 0
        if addr or size:
            flags |= _EV_RANGE1
        if addr2 or size2:
            flags |= _EV_RANGE2
        if site is not None:
            flags |= _EV_SITE
        if seq != index:
            flags |= _EV_SEQ
        append(flags)
        append(_OP_VALUE[event.op])
        if flags & _EV_RANGE1:
            i = bisect_right(los, addr) - 1
            value = i
            while value > 0x7F:
                append((value & 0x7F) | 0x80)
                value >>= 7
            append(value)
            value = addr - los[i]
            while value > 0x7F:
                append((value & 0x7F) | 0x80)
                value >>= 7
            append(value)
            value = size
            while value > 0x7F:
                append((value & 0x7F) | 0x80)
                value >>= 7
            append(value)
        if flags & _EV_RANGE2:
            i = bisect_right(los, addr2) - 1
            value = i
            while value > 0x7F:
                append((value & 0x7F) | 0x80)
                value >>= 7
            append(value)
            value = addr2 - los[i]
            while value > 0x7F:
                append((value & 0x7F) | 0x80)
                value >>= 7
            append(value)
            value = size2
            while value > 0x7F:
                append((value & 0x7F) | 0x80)
                value >>= 7
            append(value)
        if flags & _EV_SITE:
            ref = site_ref_by_id.get(id(site))
            if ref is None:
                ref = site_ids.get(site)
                if ref is None:
                    ref = site_ids[site] = len(site_ids)
                site_ref_by_id[id(site)] = ref
            value = ref
            while value > 0x7F:
                append((value & 0x7F) | 0x80)
                value >>= 7
            append(value)
        if flags & _EV_SEQ:
            value = (seq << 1) if seq >= 0 else ((-seq << 1) - 1)  # zigzag
            while value > 0x7F:
                append((value & 0x7F) | 0x80)
                value >>= 7
            append(value)
        index += 1
    # Trailer: the event count (so a prefix can never alias a shorter
    # trace) and the interned site table in first-use order.
    value = index
    while value > 0x7F:
        append((value & 0x7F) | 0x80)
        value >>= 7
    append(value)
    for site in site_ids:
        buf += site.file.encode("utf-8", "surrogatepass")
        append(0)
        buf += site.function.encode("utf-8", "surrogatepass")
        append(0)
        line = site.line
        value = (line << 1) if line >= 0 else ((-line << 1) - 1)
        while value > 0x7F:
            append((value & 0x7F) | 0x80)
            value >>= 7
        append(value)
    digest = blake2b(bytes(buf), digest_size=16).digest()
    return CanonicalForm(digest, relocation)


def canonicalize_columns(cols) -> CanonicalForm:
    """:func:`canonicalize` over a columnar trace, byte-identical.

    ``cols`` is a :class:`~repro.core.columns.ColumnarTrace` holding the
    rows the engine will replay.  The emitted canonical byte stream —
    and therefore the fingerprint — is exactly what :func:`canonicalize`
    produces for the object form of the same rows, so the two engines
    share verdict-cache entries (and the differential suite can compare
    their hit/miss counters directly).
    """
    addrs = cols.addrs
    sizes = cols.sizes
    addr2s = cols.addr2s
    size2s = cols.size2s
    ops = cols.ops
    site_idx = cols.site_idx
    site_table = cols.site_table
    seqs = cols.seqs
    n = len(ops)
    # Pass 1: segment collection (the column form of collect_segments).
    distinct = set()
    add = distinct.add
    for i in range(n):
        addr = addrs[i]
        size = sizes[i]
        if addr or size:
            add((addr, addr + size if size > 0 else addr + 1))
        addr = addr2s[i]
        size = size2s[i]
        if addr or size:
            add((addr, addr + size if size > 0 else addr + 1))
    merged: List[Tuple[int, int]] = []
    if distinct:
        ranges = sorted(distinct)
        merged.append(ranges[0])
        for lo, hi in ranges[1:]:
            last_lo, last_hi = merged[-1]
            if lo <= last_hi:
                if hi > last_hi:
                    merged[-1] = (last_lo, hi)
            else:
                merged.append((lo, hi))
    segments: List[Tuple[int, int, int]] = []
    base = CANON_BASE
    for lo, hi in merged:
        segments.append((lo, hi, base))
        base += (hi - lo) + CANON_GAP
    relocation = Relocation(segments)
    los = relocation._orig_los
    # Pass 2: the hand-inlined canonical byte stream (layout shared with
    # canonicalize above; keep the two in lockstep).
    buf = bytearray()
    append = buf.append
    site_ids: dict = {}
    #: table-index overlay over the content-keyed table — the columnar
    #: analogue of the id() overlay in :func:`canonicalize`
    site_ref_by_index: dict = {}
    for index in range(n):
        addr = addrs[index]
        size = sizes[index]
        addr2 = addr2s[index]
        size2 = size2s[index]
        table_ref = site_idx[index]
        seq = seqs[index] if seqs is not None else index
        flags = 0
        if addr or size:
            flags |= _EV_RANGE1
        if addr2 or size2:
            flags |= _EV_RANGE2
        if table_ref >= 0:
            flags |= _EV_SITE
        if seq != index:
            flags |= _EV_SEQ
        append(flags)
        append(ops[index])
        if flags & _EV_RANGE1:
            i = bisect_right(los, addr) - 1
            value = i
            while value > 0x7F:
                append((value & 0x7F) | 0x80)
                value >>= 7
            append(value)
            value = addr - los[i]
            while value > 0x7F:
                append((value & 0x7F) | 0x80)
                value >>= 7
            append(value)
            value = size
            while value > 0x7F:
                append((value & 0x7F) | 0x80)
                value >>= 7
            append(value)
        if flags & _EV_RANGE2:
            i = bisect_right(los, addr2) - 1
            value = i
            while value > 0x7F:
                append((value & 0x7F) | 0x80)
                value >>= 7
            append(value)
            value = addr2 - los[i]
            while value > 0x7F:
                append((value & 0x7F) | 0x80)
                value >>= 7
            append(value)
            value = size2
            while value > 0x7F:
                append((value & 0x7F) | 0x80)
                value >>= 7
            append(value)
        if flags & _EV_SITE:
            ref = site_ref_by_index.get(table_ref)
            if ref is None:
                site = site_table[table_ref]
                ref = site_ids.get(site)
                if ref is None:
                    ref = site_ids[site] = len(site_ids)
                site_ref_by_index[table_ref] = ref
            value = ref
            while value > 0x7F:
                append((value & 0x7F) | 0x80)
                value >>= 7
            append(value)
        if flags & _EV_SEQ:
            value = (seq << 1) if seq >= 0 else ((-seq << 1) - 1)  # zigzag
            while value > 0x7F:
                append((value & 0x7F) | 0x80)
                value >>= 7
            append(value)
    value = n
    while value > 0x7F:
        append((value & 0x7F) | 0x80)
        value >>= 7
    append(value)
    for site in site_ids:
        buf += site.file.encode("utf-8", "surrogatepass")
        append(0)
        buf += site.function.encode("utf-8", "surrogatepass")
        append(0)
        line = site.line
        value = (line << 1) if line >= 0 else ((-line << 1) - 1)
        while value > 0x7F:
            append((value & 0x7F) | 0x80)
            value >>= 7
        append(value)
    digest = blake2b(bytes(buf), digest_size=16).digest()
    return CanonicalForm(digest, relocation)
