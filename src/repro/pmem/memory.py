"""A byte-addressable persistent-memory image.

:class:`PMImage` is a flat byte array with bounds checking and typed
accessors.  The machine keeps two of them — the volatile view (what loads
observe) and the durable baseline (what has certainly persisted) — and
crash enumeration materializes more.

All multi-byte integers are little-endian, matching x86.
"""

from __future__ import annotations

import struct

_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_U32 = struct.Struct("<I")


class PMImage:
    """A fixed-size byte-addressable memory image."""

    __slots__ = ("data",)

    def __init__(self, size_or_data) -> None:
        if isinstance(size_or_data, int):
            self.data = bytearray(size_or_data)
        else:
            self.data = bytearray(size_or_data)

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Raw access
    # ------------------------------------------------------------------
    def read(self, addr: int, size: int) -> bytes:
        self._check(addr, size)
        return bytes(self.data[addr : addr + size])

    def write(self, addr: int, payload: bytes) -> None:
        self._check(addr, len(payload))
        self.data[addr : addr + len(payload)] = payload

    # ------------------------------------------------------------------
    # Typed access
    # ------------------------------------------------------------------
    def read_u64(self, addr: int) -> int:
        return _U64.unpack_from(self.data, addr)[0]

    def write_u64(self, addr: int, value: int) -> bytes:
        payload = _U64.pack(value)
        self.write(addr, payload)
        return payload

    def read_i64(self, addr: int) -> int:
        return _I64.unpack_from(self.data, addr)[0]

    def read_u32(self, addr: int) -> int:
        return _U32.unpack_from(self.data, addr)[0]

    # ------------------------------------------------------------------
    def snapshot(self) -> "PMImage":
        """An independent copy (used for crash images)."""
        return PMImage(self.data)

    def _check(self, addr: int, size: int) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if addr < 0 or addr + size > len(self.data):
            raise IndexError(
                f"PM access [{addr:#x}, {addr + size:#x}) outside image of "
                f"size {len(self.data):#x}"
            )


def pack_u64(value: int) -> bytes:
    """Little-endian encoding of a 64-bit unsigned integer."""
    return _U64.pack(value & 0xFFFFFFFFFFFFFFFF)


def unpack_u64(payload: bytes) -> int:
    return _U64.unpack(payload)[0]
