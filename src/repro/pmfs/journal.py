"""The PMFS-style undo journal ("lite journal").

PMFS logs *old* metadata values in fixed 64-byte log entries before
updating metadata in place; a transaction becomes durable when its
COMMIT entry persists.  Recovery rolls back any transaction of the
current generation that lacks a COMMIT entry.

Entry layout (64 B)::

    +--------+--------+--------+--------+----------------+
    |  addr  |  size  |  gen   |  type  |  data (32 B)   |
    +--------+--------+--------+--------+----------------+

A journal header (64 B) holds the current generation counter; entries of
older generations are stale regardless of their flags, which is how the
journal area can be reused without erasing it.

The paper's **Bug 1** (PMFS journal.c:632, fixed upstream) lives in
:meth:`Transaction.commit`: after flushing the commit log entry, the
buggy code flushed the *entire transaction* again — re-writing back the
just-flushed entry.  Injecting ``commit-dup-flush`` reproduces it, and
PMTest's duplicate-writeback checker flags it as a WARN.

Other fault sites (synthetic, for the Table 5 corpus):

``log-no-flush``     log entries are not flushed before the update
``log-no-fence``     no fence between the log entries and the update
``no-commit-flush``  the COMMIT entry is never flushed
"""

from __future__ import annotations

from typing import List, Tuple

from repro.instr.runtime import PMRuntime
from repro.pmem.memory import PMImage

ENTRY_SIZE = 64
ENTRY_DATA = 32
HEADER_SIZE = 64

TYPE_DATA = 1
TYPE_COMMIT = 2

KNOWN_FAULTS = frozenset(
    {"commit-dup-flush", "log-no-flush", "log-no-fence", "no-commit-flush"}
)


class JournalFull(Exception):
    """The journal region cannot hold more log entries."""


class Journal:
    """An undo journal over a PM region."""

    def __init__(
        self,
        runtime: PMRuntime,
        base: int,
        capacity: int,
        faults: Tuple[str, ...] = (),
    ) -> None:
        unknown = set(faults) - KNOWN_FAULTS
        if unknown:
            raise ValueError(f"unknown journal faults: {sorted(unknown)}")
        if capacity < HEADER_SIZE + 2 * ENTRY_SIZE:
            raise ValueError("journal region too small")
        self.runtime = runtime
        self.base = base
        self.capacity = capacity
        self.faults = frozenset(faults)
        self._tail = 0  # entries used by the in-flight transaction

    @property
    def max_entries(self) -> int:
        return (self.capacity - HEADER_SIZE) // ENTRY_SIZE

    @property
    def generation(self) -> int:
        return self.runtime.load_u64(self.base)

    def begin(self) -> "Transaction":
        """Start a transaction: bump and persist the generation."""
        generation = self.generation + 1
        self.runtime.store_u64(self.base, generation)
        self.runtime.persist(self.base, 8)
        self._tail = 0
        return Transaction(self, generation)

    def _entry_addr(self, index: int) -> int:
        return self.base + HEADER_SIZE + index * ENTRY_SIZE


class Transaction:
    """One journaled metadata transaction."""

    def __init__(self, journal: Journal, generation: int) -> None:
        self.journal = journal
        self.generation = generation
        self.entries: List[int] = []  # entry addresses
        self.committed = False

    # ------------------------------------------------------------------
    def log_range(self, addr: int, size: int) -> None:
        """``pmfs_add_logentry``: snapshot old data before modifying it."""
        runtime = self.journal.runtime
        faults = self.journal.faults
        offset = 0
        first_new = len(self.entries)
        while offset < size:
            chunk = min(ENTRY_DATA, size - offset)
            index = self.journal._tail
            if index >= self.journal.max_entries:
                raise JournalFull("journal has no free log entries")
            entry = self.journal._entry_addr(index)
            old = runtime.load(addr + offset, chunk)
            runtime.store_u64(entry, addr + offset)
            runtime.store_u64(entry + 8, chunk)
            runtime.store_u64(entry + 16, self.generation)
            runtime.store_u64(entry + 24, TYPE_DATA)
            runtime.store(entry + 32, old.ljust(ENTRY_DATA, b"\0"))
            self.journal._tail += 1
            self.entries.append(entry)
            offset += chunk
        if "log-no-flush" not in faults:
            for entry in self.entries[first_new:]:
                runtime.clwb(entry, ENTRY_SIZE)
        if "log-no-fence" not in faults:
            runtime.sfence()
        # Library self-annotation: undo entries must be durable before
        # the caller is allowed to modify the logged ranges.
        session = runtime.session
        if session is not None:
            for entry in self.entries[first_new:]:
                session.is_persist(entry, ENTRY_SIZE)

    def commit(self) -> int:
        """``pmfs_commit_transaction``: append and persist COMMIT.

        Returns the commit entry's address so callers can assert their
        metadata persists *before* the commit record (an undo journal
        must not skip rollback while the logged updates are still in
        flight).
        """
        runtime = self.journal.runtime
        faults = self.journal.faults
        index = self.journal._tail
        if index >= self.journal.max_entries:
            raise JournalFull("no room for the COMMIT entry")
        commit_entry = self.journal._entry_addr(index)
        runtime.store_u64(commit_entry + 16, self.generation)
        runtime.store_u64(commit_entry + 24, TYPE_COMMIT)
        self.journal._tail += 1
        if "no-commit-flush" not in faults:
            # Only gen and type were written; flushing the whole 64-byte
            # entry would write back untouched bytes.
            runtime.clwb(commit_entry + 16, 16)
        if "commit-dup-flush" in faults:
            # Bug 1 (journal.c:632): flush the whole transaction again,
            # including the entry just written back.
            start = self.entries[0] if self.entries else commit_entry
            runtime.clwb(start, commit_entry + ENTRY_SIZE - start)
        runtime.sfence()
        self.committed = True
        # Self-annotation: the operation returns with a durable commit.
        session = runtime.session
        if session is not None:
            session.is_persist(commit_entry + 16, 16)
        return commit_entry


def iter_journal_entries(image: PMImage, base: int, capacity: int):
    """All entries of the image's current generation, in order."""
    generation = image.read_u64(base)
    max_entries = (capacity - HEADER_SIZE) // ENTRY_SIZE
    for index in range(max_entries):
        entry = base + HEADER_SIZE + index * ENTRY_SIZE
        if image.read_u64(entry + 16) != generation:
            continue
        yield (
            entry,
            image.read_u64(entry),  # addr
            image.read_u64(entry + 8),  # size
            image.read_u64(entry + 24),  # type
        )


def recover_journal(image: PMImage, base: int, capacity: int) -> int:
    """Offline recovery: roll back an uncommitted current-generation
    transaction.  Returns the number of entries undone (0 if the last
    transaction committed or the journal is empty)."""
    entries = list(iter_journal_entries(image, base, capacity))
    if any(etype == TYPE_COMMIT for _, _, _, etype in entries):
        return 0
    undone = 0
    for entry, addr, size, etype in reversed(entries):
        if etype != TYPE_DATA or size == 0 or size > ENTRY_DATA:
            continue
        image.write(addr, image.read(entry + 32, size))
        undone += 1
    return undone
