"""Direct tests for the shadow memory's lazy interval derivation."""

from repro.core.events import SourceSite
from repro.core.intervals import INF
from repro.core.shadow import SegmentState, ShadowMemory


class TestTimestamps:
    def test_starts_at_zero(self):
        assert ShadowMemory().timestamp == 0

    def test_advance(self):
        shadow = ShadowMemory()
        assert shadow.advance() == 1
        assert shadow.advance() == 2


class TestX86Derivation:
    def test_unflushed_write_is_open(self):
        shadow = ShadowMemory()
        state = SegmentState(write_epoch=0)
        assert shadow.x86_interval(state).end == INF
        assert shadow.x86_flush_interval(state) is None

    def test_flushed_but_unfenced_is_open(self):
        shadow = ShadowMemory()
        state = SegmentState(write_epoch=0, flush_epoch=0)
        # No fence has happened: timestamp == flush_epoch.
        assert shadow.x86_interval(state).end == INF
        assert not shadow.x86_flush_interval(state).closed

    def test_fence_closes_at_flush_epoch_plus_one(self):
        shadow = ShadowMemory()
        state = SegmentState(write_epoch=0, flush_epoch=0)
        shadow.advance()
        assert shadow.x86_interval(state) == (0, 1)
        assert shadow.x86_flush_interval(state) == (0, 1)

    def test_later_fences_do_not_move_the_end(self):
        shadow = ShadowMemory()
        state = SegmentState(write_epoch=0, flush_epoch=0)
        for _ in range(5):
            shadow.advance()
        assert shadow.x86_interval(state) == (0, 1)

    def test_flush_in_later_epoch(self):
        shadow = ShadowMemory()
        shadow.advance()  # T=1
        shadow.advance()  # T=2
        state = SegmentState(write_epoch=0, flush_epoch=2)
        assert shadow.x86_interval(state).end == INF
        shadow.advance()  # T=3: the first fence after the flush
        assert shadow.x86_interval(state) == (0, 3)

    def test_with_flush_preserves_write_metadata(self):
        site_w = SourceSite("a.c", 1)
        site_f = SourceSite("a.c", 2)
        state = SegmentState(3, None, site_w)
        flushed = state.with_flush(5, site_f)
        assert flushed.write_epoch == 3
        assert flushed.flush_epoch == 5
        assert flushed.write_site == site_w
        assert flushed.flush_site == site_f


class TestHOPSDerivation:
    def test_no_dfence_is_open(self):
        shadow = ShadowMemory()
        state = SegmentState(write_epoch=0)
        assert shadow.hops_interval(state).end == INF

    def test_first_dfence_after_write_closes(self):
        shadow = ShadowMemory()
        shadow.record_dfence()  # T=1
        state = SegmentState(write_epoch=1)
        shadow.record_dfence()  # T=2
        shadow.record_dfence()  # T=3
        assert shadow.hops_interval(state) == (1, 2)

    def test_dfence_before_write_does_not_close(self):
        shadow = ShadowMemory()
        shadow.record_dfence()  # T=1
        state = SegmentState(write_epoch=1)
        assert shadow.hops_interval(state).end == INF

    def test_first_dfence_after(self):
        shadow = ShadowMemory()
        shadow.record_dfence()  # epochs: [1]
        shadow.advance()  # ofence: T=2
        shadow.record_dfence()  # epochs: [1, 3]
        assert shadow.first_dfence_after(0) == 1
        assert shadow.first_dfence_after(1) == 3
        assert shadow.first_dfence_after(3) == INF
