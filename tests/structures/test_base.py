"""Tests for the structure base class and the value-buffer helper."""

import pytest

from repro.pmem.machine import PMMachine
from repro.structures.base import PersistentMap, ValueBuffer
from tests.structures.conftest import make_pool


class TestValueBuffer:
    def test_roundtrip(self):
        pool = make_pool()
        buf = ValueBuffer.create(pool, b"hello")
        assert buf.read() == b"hello"
        assert buf.length == 5

    def test_empty_payload(self):
        pool = make_pool()
        buf = ValueBuffer.create(pool, b"")
        assert buf.read() == b""
        addr, size = buf.payload_range()
        assert size == ValueBuffer.SIZE + 1  # header + 1 reserved byte

    def test_payload_range_covers_data(self):
        pool = make_pool()
        buf = ValueBuffer.create(pool, b"x" * 100)
        addr, size = buf.payload_range()
        assert addr == buf.addr
        assert size == ValueBuffer.SIZE + 100


class TestDefaultPayload:
    class Stub(PersistentMap):
        NAME = "stub"

        def insert(self, key, payload=None):
            raise NotImplementedError

        def lookup(self, key):
            raise NotImplementedError

        def items(self):
            return iter(())

    def test_payload_is_deterministic_and_sized(self):
        stub = self.Stub(make_pool(), value_size=20)
        a = stub.default_payload(7)
        b = stub.default_payload(7)
        assert a == b
        assert len(a) == 20
        assert stub.default_payload(8) != a

    def test_remove_default_raises(self):
        stub = self.Stub(make_pool())
        with pytest.raises(NotImplementedError):
            stub.remove(1)

    def test_len_counts_items(self):
        stub = self.Stub(make_pool())
        assert len(stub) == 0


class TestMachineOplogCheckpoint:
    def test_begin_oplog_requires_quiescence(self):
        machine = PMMachine(1024)
        machine.store(0, b"x")  # pending
        with pytest.raises(RuntimeError):
            machine.begin_oplog()

    def test_begin_oplog_returns_durable_snapshot(self):
        machine = PMMachine(1024)
        machine.store(0, b"x")
        machine.flush(0, 1)
        machine.sfence()
        base = machine.begin_oplog()
        assert base.read(0, 1) == b"x"
        machine.store(0, b"y")
        assert base.read(0, 1) == b"x"  # snapshot is isolated
        assert machine.oplog == [("store", 0, b"y")]
