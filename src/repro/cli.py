"""Command-line interface: check recorded traces offline.

Usage::

    python -m repro check run.pmtrace [--model x86|hops|eadr|x86-naive]
                                      [--workers N]
                                      [--backend inline|thread|process]
                                      [--batch-size K]
                                      [--check-timeout SECONDS]
                                      [--max-retries N]
                                      [--fallback | --no-fallback]
                                      [--verdict-cache | --no-verdict-cache]
                                      [--verdict-cache-size N]
                                      [--chaos-seed SEED]
                                      [--metrics-json PATH]
                                      [--trace-out PATH]
                                      [--max-reports K] [--quiet]
    python -m repro stats run.pmtrace
    python -m repro stats metrics.json
    python -m repro stats --connect unix:///tmp/pmtestd.sock [--flight]
    python -m repro serve --uds /tmp/pmtestd.sock [--model ...]
                          [--workers N] [--backend ...]
                          [--max-sessions N] [--inflight-bytes N]
                          [--rate-limit-bytes N] [--queue-timeout S]
                          [--retry-after-ms MS] [--max-sheds N]
                          [--http HOST:PORT] [--trace-out PATH]
                          [--flight-json PATH]
    python -m repro submit run.pmtrace --connect unix:///tmp/pmtestd.sock
                                       [--tenant NAME] [--deadline S]
                                       [--batch-size K]
                                       [--metrics-json PATH]
                                       [--trace-out PATH]
    python -m repro top --connect unix:///tmp/pmtestd.sock
                        [--interval S] [--iterations N] [--once]

``check`` replays every trace in the dump through the checking engine and
prints the reports (exit status 1 if any FAIL was found, 2 for usage or
format errors); ``stats`` summarizes a dump without checking it.  When
``stats`` is pointed at a metrics dump written by ``check
--metrics-json`` it prints the per-stage latency breakdown instead
(paper Figure 10b's stage decomposition); pointed at a running daemon
with ``--connect`` it fetches one live stats snapshot (or the flight
recorder with ``--flight``) as JSON.  ``serve`` runs the checking
daemon (:mod:`repro.daemon`) until SIGTERM/SIGINT, and ``submit``
streams a dump through a running daemon — same verdicts, same exit
codes as ``check``.  ``top`` subscribes to a daemon's stats stream and
renders a refreshing per-tenant table (traces/s, queue depth, sheds,
frame p99).

Traces are produced with :class:`repro.core.traceio.TraceRecorder` (or any
tool emitting the documented JSON-lines format), which makes the classic
record-in-production / analyze-later workflow possible.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from collections import Counter
from typing import List, Optional

from repro.core.backends import CheckingFailed
from repro.core.faults import FaultPoint, Resilience, plan_from_seed
from repro.core.metrics import (
    JSON_FORMAT,
    MetricsLevel,
    MetricsRegistry,
    make_registry,
    stage_breakdown,
)
from repro.core.rules import HOPSRules, PersistencyRules, X86Rules
from repro.core.rules.eadr import EADRRules
from repro.core.rules.naive import NaiveX86Rules
from repro.core.backends import TRANSPORT_NAMES
from repro.core.engine_columnar import ENGINE_NAMES
from repro.core.interval_array import SHADOW_NAMES
from repro.core.shard_plan import PLAN_MODES
from repro.core.traceio import TraceFormatError, load_traces_auto
from repro.core.tracing import Tracer
from repro.core.workers import BACKEND_NAMES, WorkerPool

MODELS = {
    "x86": X86Rules,
    "hops": HOPSRules,
    "eadr": EADRRules,
    "x86-naive": NaiveX86Rules,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PMTest offline trace tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="check a recorded trace dump")
    check.add_argument("trace_file", help="path to a .pmtrace dump")
    check.add_argument(
        "--model",
        choices=sorted(MODELS),
        default="x86",
        help="persistency model to check under (default: x86)",
    )
    check.add_argument(
        "--workers",
        type=int,
        default=0,
        help="checking workers (default 0: synchronous)",
    )
    check.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help=(
            "checking backend: inline (synchronous), thread (GIL-bound "
            "worker threads), or process (true parallel worker "
            "processes); default derives from --workers"
        ),
    )
    check.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help=(
            "pin traces per IPC message for --backend process "
            "(default: adapts to backpressure)"
        ),
    )
    check.add_argument(
        "--transport",
        choices=TRANSPORT_NAMES,
        default=None,
        help=(
            "IPC channel for --backend process: queue "
            "(multiprocessing.Queue) or shm (shared-memory ring "
            "buffers with the binary wire codec); default: "
            "PMTEST_TRANSPORT or queue"
        ),
    )
    check.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default=None,
        help=(
            "replay engine: object (per-event dispatch) or columnar "
            "(struct-of-arrays batch replay; faster on large traces, "
            "identical verdicts); default: PMTEST_ENGINE or object"
        ),
    )
    check.add_argument(
        "--shadow",
        choices=SHADOW_NAMES,
        default=None,
        help=(
            "shadow-memory interval store: object (IntervalMap) or "
            "array (struct-of-arrays with batched epoch updates; "
            "faster on interval-heavy traces, identical verdicts); "
            "default: PMTEST_SHADOW or object"
        ),
    )
    check.add_argument(
        "--shard-min-events",
        type=int,
        default=None,
        metavar="N",
        help=(
            "epoch-shard traces with at least N events across the "
            "workers (columnar engine only; default: "
            "PMTEST_SHARD_MIN_EVENTS or off)"
        ),
    )
    check.add_argument(
        "--shard-plan",
        choices=PLAN_MODES,
        default=None,
        help=(
            "how epoch-shard counts are decided: off (never), fixed "
            "(the --shard-min-events threshold, one shard per "
            "worker) or auto (size shards from a measured per-event "
            "replay cost); default: PMTEST_SHARD_PLAN, else fixed "
            "when --shard-min-events is set and off otherwise"
        ),
    )
    check.add_argument(
        "--check-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "watchdog timeout for the checking drain: after this long "
            "with no progress, outstanding traces are requeued once, "
            "then the backend degrades or the check fails (default: "
            "wait forever)"
        ),
    )
    check.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help=(
            "dead checking workers respawned per backend before it is "
            "declared unhealthy (default 2)"
        ),
    )
    fb = check.add_mutually_exclusive_group()
    fb.add_argument(
        "--fallback",
        dest="fallback",
        action="store_true",
        default=True,
        help=(
            "degrade process -> thread -> inline when a backend cannot "
            "spawn or turns unhealthy (default)"
        ),
    )
    fb.add_argument(
        "--no-fallback",
        dest="fallback",
        action="store_false",
        help="fail the check instead of degrading the backend",
    )
    vc = check.add_mutually_exclusive_group()
    vc.add_argument(
        "--verdict-cache",
        dest="verdict_cache",
        action="store_true",
        default=None,
        help=(
            "answer structurally identical traces from the per-worker "
            "verdict cache instead of replaying them (default: "
            "PMTEST_VERDICT_CACHE, on when unset)"
        ),
    )
    vc.add_argument(
        "--no-verdict-cache",
        dest="verdict_cache",
        action="store_false",
        help="replay every trace in full",
    )
    check.add_argument(
        "--verdict-cache-size",
        type=int,
        default=None,
        metavar="N",
        help="per-worker verdict-cache capacity in entries (default 1024)",
    )
    check.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="SEED",
        help=(
            "inject a deterministic, recoverable fault plan derived "
            "from SEED into the checking pipeline (for testing the "
            "recovery machinery; verdicts are unaffected)"
        ),
    )
    check.add_argument(
        "--metrics-json",
        default=None,
        metavar="PATH",
        help=(
            "write the merged metrics registry to PATH as JSON after the "
            "check (forces full metrics for this run; inspect with "
            "'repro stats PATH')"
        ),
    )
    check.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help=(
            "write a chrome://tracing / Perfetto-compatible span trace "
            "of the checking pipeline to PATH"
        ),
    )
    check.add_argument(
        "--max-reports",
        type=int,
        default=20,
        help="print at most this many reports (default 20)",
    )
    check.add_argument(
        "--quiet",
        action="store_true",
        help="print only the summary line",
    )

    stats = sub.add_parser(
        "stats",
        help=(
            "summarize a trace dump, a metrics JSON dump, or a "
            "running daemon"
        ),
    )
    stats.add_argument(
        "trace_file",
        nargs="?",
        default=None,
        help="path to a .pmtrace dump or a 'check --metrics-json' output",
    )
    stats.add_argument(
        "--connect",
        default=None,
        metavar="ADDR",
        help=(
            "fetch live stats from a running daemon instead of reading "
            "a file (unix:///path, tcp://host:port, host:port)"
        ),
    )
    stats.add_argument(
        "--flight",
        action="store_true",
        help=(
            "with --connect: dump the daemon's flight recorder (recent "
            "sheds, rejections, aborts, chaos firings, slow frames)"
        ),
    )
    stats.add_argument(
        "--tenant", default="cli-stats",
        help="tenant name for the stats session (default: cli-stats)",
    )
    stats.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="overall budget for the daemon round trip",
    )

    serve = sub.add_parser(
        "serve", help="run the checking daemon (checking-as-a-service)"
    )
    serve.add_argument(
        "--uds",
        default=None,
        metavar="PATH",
        help="listen on a Unix domain socket at PATH",
    )
    serve.add_argument(
        "--host",
        default=None,
        help="listen on TCP at this host (with --port)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port for --host (default 0: ephemeral, printed on start)",
    )
    serve.add_argument(
        "--model",
        choices=sorted(MODELS),
        default="x86",
        help="persistency model every session checks under (default: x86)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="checking workers per session pool (default 1)",
    )
    serve.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="checking backend for session pools (default from --workers)",
    )
    serve.add_argument(
        "--batch-size", type=int, default=None,
        help="traces per IPC message for --backend process",
    )
    serve.add_argument(
        "--transport", choices=TRANSPORT_NAMES, default=None,
        help="IPC channel for --backend process (queue or shm)",
    )
    serve.add_argument(
        "--engine", choices=ENGINE_NAMES, default=None,
        help="replay engine (object or columnar)",
    )
    serve.add_argument(
        "--shadow", choices=SHADOW_NAMES, default=None,
        help="shadow interval store (object or array)",
    )
    serve.add_argument(
        "--shard-min-events", type=int, default=None, metavar="N",
        help="epoch-shard threshold for session pools "
             "(see 'check --shard-min-events')",
    )
    serve.add_argument(
        "--shard-plan", choices=PLAN_MODES, default=None,
        help="shard-count policy for session pools "
             "(see 'check --shard-plan')",
    )
    vc2 = serve.add_mutually_exclusive_group()
    vc2.add_argument(
        "--verdict-cache", dest="verdict_cache", action="store_true",
        default=None, help="enable the per-worker verdict cache",
    )
    vc2.add_argument(
        "--no-verdict-cache", dest="verdict_cache", action="store_false",
        help="replay every trace in full",
    )
    serve.add_argument(
        "--check-timeout", type=float, default=None, metavar="SECONDS",
        help="per-session checking watchdog (see 'check --check-timeout')",
    )
    serve.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="worker respawns per session backend (default 2)",
    )
    fb2 = serve.add_mutually_exclusive_group()
    fb2.add_argument(
        "--fallback", dest="fallback", action="store_true", default=True,
        help=(
            "degrade overloaded/unhealthy stages instead of failing: "
            "session pools fall back process -> thread -> inline, and "
            "admission sheds with retry-after before rejecting (default)"
        ),
    )
    fb2.add_argument(
        "--no-fallback", dest="fallback", action="store_false",
        help=(
            "fail fast: no backend degradation and no shed rung "
            "(admission rejects as soon as the budget is exhausted)"
        ),
    )
    serve.add_argument(
        "--max-sessions", type=int, default=64, metavar="N",
        help="concurrent session ceiling (default 64)",
    )
    serve.add_argument(
        "--inflight-bytes", type=int, default=32 * 1024 * 1024, metavar="N",
        help=(
            "global budget of admitted-but-unchecked frame bytes — the "
            "daemon's RSS guardrail (default 32 MiB)"
        ),
    )
    serve.add_argument(
        "--rate-limit-bytes", type=int, default=None, metavar="N",
        help="per-tenant sustained frame bytes per second (default: off)",
    )
    serve.add_argument(
        "--burst-bytes", type=int, default=None, metavar="N",
        help="per-tenant token-bucket capacity (default: 2x rate)",
    )
    serve.add_argument(
        "--queue-timeout", type=float, default=0.5, metavar="SECONDS",
        help=(
            "how long an over-budget frame may wait (rung 0) before "
            "being shed (default 0.5)"
        ),
    )
    serve.add_argument(
        "--retry-after-ms", type=int, default=50, metavar="MS",
        help=(
            "base retry-after hint on a shed; doubles per consecutive "
            "shed (default 50)"
        ),
    )
    serve.add_argument(
        "--max-sheds", type=int, default=8, metavar="N",
        help=(
            "consecutive sheds before a session is rejected outright "
            "(default 8)"
        ),
    )
    serve.add_argument(
        "--checkpoint-bytes", type=int, default=1024 * 1024, metavar="N",
        help=(
            "admitted bytes a session may accumulate before an "
            "intermediate drain releases them (default 1 MiB)"
        ),
    )
    serve.add_argument(
        "--handshake-timeout", type=float, default=5.0, metavar="SECONDS",
        help="seconds a new connection gets to say hello (default 5)",
    )
    serve.add_argument(
        "--idle-timeout", type=float, default=60.0, metavar="SECONDS",
        help="seconds of session silence before disconnect (default 60)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help=(
            "seconds SIGTERM waits for live sessions to finish before "
            "cancelling them (default 30)"
        ),
    )
    serve.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help=(
            "write the server's merged metrics registry to PATH on "
            "shutdown (forces full metrics)"
        ),
    )
    serve.add_argument(
        "--http", default=None, metavar="HOST:PORT",
        help=(
            "serve live telemetry over HTTP at this address: /metrics "
            "(Prometheus text exposition) and /healthz"
        ),
    )
    serve.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help=(
            "write the daemon's chrome://tracing span timeline "
            "(sessions, drains, worker batches) to PATH on shutdown"
        ),
    )
    serve.add_argument(
        "--flight-json", default=None, metavar="PATH",
        help=(
            "dump the flight recorder (recent sheds, rejections, "
            "aborts, chaos firings, slow frames) to PATH on shutdown"
        ),
    )
    serve.add_argument(
        "--chaos-seed", type=int, default=None, metavar="SEED",
        help="inject a deterministic fault plan (testing only)",
    )
    serve.add_argument(
        "--chaos-points", default=None, metavar="P1,P2,...",
        help=(
            "restrict the chaos plan to these fault points "
            f"(valid: {', '.join(FaultPoint.ALL)})"
        ),
    )

    submit = sub.add_parser(
        "submit", help="stream a trace dump through a running daemon"
    )
    submit.add_argument("trace_file", help="path to a .pmtrace dump")
    submit.add_argument(
        "--connect",
        required=True,
        metavar="ADDR",
        help=(
            "daemon address: unix:///path, tcp://host:port, host:port "
            "or a bare socket path"
        ),
    )
    submit.add_argument(
        "--tenant", default="cli",
        help="tenant name for admission accounting (default: cli)",
    )
    submit.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help=(
            "overall budget for connect, backoff and verdict waits; "
            "exceeded -> exit 2 (default: wait forever)"
        ),
    )
    submit.add_argument(
        "--batch-size", type=int, default=16,
        help="traces per frame (default 16)",
    )
    submit.add_argument(
        "--max-reports", type=int, default=20,
        help="print at most this many reports (default 20)",
    )
    submit.add_argument(
        "--quiet", action="store_true", help="print only the summary line"
    )
    submit.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help=(
            "write the client registry merged with the server-shipped "
            "session registry to PATH as JSON (forces full metrics "
            "client-side; inspect with 'repro stats PATH')"
        ),
    )
    submit.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help=(
            "write a chrome://tracing span trace of the client session "
            "to PATH (merge with the daemon's --trace-out file via "
            "repro.core.tracing.merge_trace_files for one timeline)"
        ),
    )

    top = sub.add_parser(
        "top", help="live per-tenant view of a running daemon"
    )
    top.add_argument(
        "--connect",
        required=True,
        metavar="ADDR",
        help=(
            "daemon address: unix:///path, tcp://host:port, host:port "
            "or a bare socket path"
        ),
    )
    top.add_argument(
        "--tenant", default="cli-top",
        help="tenant name for the stats session (default: cli-top)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help=(
            "refresh interval; the daemon floors this at its own "
            "telemetry interval (default 1.0)"
        ),
    )
    top.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop after N refreshes (default 0: run until interrupted)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print a single snapshot and exit (no ANSI refresh)",
    )
    top.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="overall budget for connect and stats waits",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "stats":
        return _stats(args)
    if args.command == "top":
        return _top(args)
    if args.command == "serve":
        return _serve(args)
    try:
        traces = load_traces_auto(args.trace_file)
    except FileNotFoundError:
        print(f"error: no such file: {args.trace_file}", file=sys.stderr)
        return 2
    except TraceFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.command == "submit":
        return _submit(args, traces)
    return _check(args, traces)


def _check(args: argparse.Namespace, traces) -> int:
    if args.batch_size is not None and args.batch_size < 1:
        print("error: --batch-size must be >= 1", file=sys.stderr)
        return 2
    if args.max_retries < 0:
        print("error: --max-retries must be >= 0", file=sys.stderr)
        return 2
    if args.verdict_cache_size is not None and args.verdict_cache_size < 0:
        print("error: --verdict-cache-size must be >= 0", file=sys.stderr)
        return 2
    if args.shard_min_events is not None and args.shard_min_events < 1:
        print("error: --shard-min-events must be >= 1", file=sys.stderr)
        return 2
    rules: PersistencyRules = MODELS[args.model]()
    faults = (
        plan_from_seed(args.chaos_seed) if args.chaos_seed is not None else None
    )
    # --metrics-json forces a full-level registry so the dump always has
    # the per-stage timings; otherwise the PMTEST_METRICS env decides.
    metrics = make_registry()
    if args.metrics_json is not None and (metrics is None or not metrics.full):
        metrics = MetricsRegistry(MetricsLevel.FULL)
    tracer = Tracer() if args.trace_out is not None else None
    snapshot: Optional[MetricsRegistry] = None
    try:
        with WorkerPool(
            rules,
            num_workers=args.workers,
            backend=args.backend,
            batch_size=args.batch_size,
            transport=args.transport,
            check_timeout=args.check_timeout,
            max_retries=args.max_retries,
            fallback=args.fallback,
            faults=faults,
            metrics=metrics,
            tracer=tracer,
            verdict_cache=args.verdict_cache,
            verdict_cache_size=args.verdict_cache_size,
            engine=args.engine,
            shadow=args.shadow,
            shard_min_events=args.shard_min_events,
            shard_plan=args.shard_plan,
        ) as pool:
            for trace in traces:
                pool.submit(trace)
            result = pool.drain()
            snapshot = pool.metrics_snapshot()
    except ValueError as exc:
        # e.g. --shard-min-events without --engine columnar
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CheckingFailed as exc:
        print(f"error: checking failed: {exc}", file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            tracer.finish()
            try:
                tracer.write(args.trace_out)
            except OSError as exc:
                print(
                    f"error: cannot write {args.trace_out}: {exc}",
                    file=sys.stderr,
                )
                return 2
    if args.metrics_json is not None:
        payload = snapshot.to_dict() if snapshot is not None else {}
        try:
            with open(args.metrics_json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            print(
                f"error: cannot write {args.metrics_json}: {exc}",
                file=sys.stderr,
            )
            return 2
    return _print_result(result, args.model, args.max_reports, args.quiet)


def _print_result(result, label: str, max_reports: int, quiet: bool) -> int:
    print(f"{label}: {result.summary()}")
    if not quiet:
        for report in result.reports[:max_reports]:
            print(f"  {report}")
        hidden = len(result.reports) - max_reports
        if hidden > 0:
            print(f"  ... and {hidden} more")
        for line in result.diagnostics:
            print(f"  [recovery] {line}")
    return 0 if result.passed else 1


def _serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the checking daemon until SIGTERM/SIGINT."""
    from repro.daemon import AdmissionPolicy, CheckingServer

    if args.uds is None and args.host is None:
        print("error: serve needs --uds and/or --host", file=sys.stderr)
        return 2
    points = None
    if args.chaos_points is not None:
        if args.chaos_seed is None:
            print(
                "error: --chaos-points requires --chaos-seed",
                file=sys.stderr,
            )
            return 2
        points = [p.strip() for p in args.chaos_points.split(",") if p.strip()]
    try:
        faults = (
            plan_from_seed(args.chaos_seed, points)
            if args.chaos_seed is not None
            else None
        )
        policy = AdmissionPolicy(
            max_sessions=args.max_sessions,
            max_inflight_bytes=args.inflight_bytes,
            tenant_rate_bytes=args.rate_limit_bytes,
            tenant_burst_bytes=args.burst_bytes,
            queue_timeout=args.queue_timeout,
            retry_after_ms=args.retry_after_ms,
            max_sheds=args.max_sheds,
            checkpoint_bytes=args.checkpoint_bytes,
        )
        http_host: Optional[str] = None
        http_port = 0
        if args.http is not None:
            host, sep, port = args.http.rpartition(":")
            if not sep or not port.isdigit():
                print(
                    f"error: cannot parse --http {args.http!r}; "
                    "expected HOST:PORT",
                    file=sys.stderr,
                )
                return 2
            http_host = host or "127.0.0.1"
            http_port = int(port)
        metrics = make_registry()
        if args.metrics_json is not None and (
            metrics is None or not metrics.full
        ):
            metrics = MetricsRegistry(MetricsLevel.FULL)
        tracer = (
            Tracer(process_name="repro-serve")
            if args.trace_out is not None else None
        )
        server = CheckingServer(
            MODELS[args.model],
            host=args.host,
            port=args.port,
            uds=args.uds,
            workers=args.workers,
            backend=args.backend,
            transport=args.transport,
            engine=args.engine,
            shadow=args.shadow,
            shard_min_events=args.shard_min_events,
            shard_plan=args.shard_plan,
            batch_size=args.batch_size,
            verdict_cache=args.verdict_cache,
            policy=policy,
            resilience=Resilience(
                check_timeout=args.check_timeout,
                max_retries=args.max_retries,
                fallback=args.fallback,
            ),
            faults=faults,
            metrics=metrics,
            tracer=tracer,
            http_host=http_host,
            http_port=http_port,
            handshake_timeout=args.handshake_timeout,
            idle_timeout=args.idle_timeout,
            drain_timeout=args.drain_timeout,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        return asyncio.run(_serve_async(server, args, tracer))
    except OSError as exc:  # bind failure, stale socket, ...
        print(f"error: cannot listen: {exc}", file=sys.stderr)
        return 2


def _write_text(path: str, data: str) -> bool:
    try:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(data)
            if not data.endswith("\n"):
                handle.write("\n")
        return True
    except OSError as exc:
        print(f"error: cannot write {path}: {exc}", file=sys.stderr)
        return False


async def _serve_async(server, args, tracer: Optional[Tracer]) -> int:
    await server.start()
    server.install_signal_handlers()
    if server.uds_path is not None:
        print(f"listening on unix://{server.uds_path}", flush=True)
    address = server.tcp_address
    if address is not None:
        print(f"listening on tcp://{address[0]}:{address[1]}", flush=True)
    http = server.http_address
    if http is not None:
        print(
            f"telemetry on http://{http[0]}:{http[1]}/metrics", flush=True
        )
    await server.serve_forever()
    admission = server.admission
    print(
        f"drained: {server.sessions_served} session(s), "
        f"{server.traces_accepted} trace(s), "
        f"{admission.frames_shed} shed frame(s), "
        f"{admission.sessions_rejected} rejection(s)",
        flush=True,
    )
    status = 0
    if args.metrics_json is not None:
        snapshot = server.metrics_snapshot()
        payload = snapshot.to_dict() if snapshot is not None else {}
        if not _write_text(
            args.metrics_json,
            json.dumps(payload, indent=2, sort_keys=True),
        ):
            status = 2
    if args.flight_json is not None:
        if server.flight is not None:
            data = server.flight.to_json()
        else:  # metrics off: no recorder existed, dump an empty ring
            data = json.dumps(
                {"capacity": 0, "recorded": 0, "dropped": 0, "events": []},
                indent=2, sort_keys=True,
            )
        if not _write_text(args.flight_json, data):
            status = 2
    if tracer is not None:
        tracer.finish()
        try:
            tracer.write(args.trace_out)
        except OSError as exc:
            print(
                f"error: cannot write {args.trace_out}: {exc}",
                file=sys.stderr,
            )
            status = 2
    return status


def _submit(args: argparse.Namespace, traces) -> int:
    """``repro submit``: stream a dump through a running daemon."""
    from repro.client import (
        CheckingClient,
        DaemonError,
        DeadlineExceeded,
    )

    if args.batch_size < 1:
        print("error: --batch-size must be >= 1", file=sys.stderr)
        return 2
    # Same telemetry semantics as 'repro check': --metrics-json forces a
    # full client-side registry (merged with the server-shipped session
    # registry at the end), --trace-out records the client's spans.
    metrics = make_registry()
    if args.metrics_json is not None and (metrics is None or not metrics.full):
        metrics = MetricsRegistry(MetricsLevel.FULL)
    tracer = (
        Tracer(process_name="repro-submit")
        if args.trace_out is not None else None
    )
    try:
        client = CheckingClient(
            args.connect,
            tenant=args.tenant,
            deadline=args.deadline,
            batch_size=args.batch_size,
            tracer=tracer,
            metrics=metrics,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except DaemonError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        try:
            for trace in traces:
                client.submit(trace)
            result = client.close()
        except DeadlineExceeded as exc:
            client.abort()
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except DaemonError as exc:
            client.abort()
            print(f"error: {exc}", file=sys.stderr)
            return 2
    finally:
        if tracer is not None:
            tracer.finish()
            try:
                tracer.write(args.trace_out)
            except OSError as exc:
                print(
                    f"error: cannot write {args.trace_out}: {exc}",
                    file=sys.stderr,
                )
                return 2
    if args.metrics_json is not None:
        snapshot = client.metrics_snapshot()
        payload = snapshot.to_dict() if snapshot is not None else {}
        if not _write_text(
            args.metrics_json, json.dumps(payload, indent=2, sort_keys=True)
        ):
            return 2
    return _print_result(result, "daemon", args.max_reports, args.quiet)


def _stats(args: argparse.Namespace) -> int:
    """Summarize a trace dump, a metrics JSON dump, or a live daemon.

    With ``--connect`` the stats (or, with ``--flight``, the flight
    recorder) come from a running daemon as JSON.  Otherwise the file
    is sniffed, not switched on extension: a JSON object whose
    ``format`` field is the metrics marker gets the stage-breakdown
    rendering, anything else goes through the trace loader.
    """
    if args.connect is not None:
        return _remote_stats(args)
    if args.flight:
        print("error: --flight requires --connect", file=sys.stderr)
        return 2
    if args.trace_file is None:
        print("error: stats needs a file or --connect", file=sys.stderr)
        return 2
    path = args.trace_file
    try:
        with open(path, "r", encoding="utf-8") as handle:
            head = handle.read()
    except FileNotFoundError:
        print(f"error: no such file: {path}", file=sys.stderr)
        return 2
    except UnicodeDecodeError:
        head = None  # not UTF-8 text, so certainly not a metrics dump
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    payload = None
    if head is not None:
        try:
            payload = json.loads(head)
        except ValueError:
            pass
    if isinstance(payload, dict) and payload.get("format") == JSON_FORMAT:
        try:
            registry = MetricsRegistry.from_dict(payload)
        except (ValueError, KeyError, TypeError) as exc:
            print(f"error: bad metrics dump: {exc}", file=sys.stderr)
            return 2
        return _metrics_stats(registry)
    try:
        traces = load_traces_auto(path)
    except TraceFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return _trace_stats(traces)


def _metrics_stats(registry: MetricsRegistry) -> int:
    """Print the Figure-10b-style per-stage latency breakdown."""
    print(f"metrics level: {registry.level.value}")
    for name in ("engine.traces", "engine.events", "engine.checkers",
                 "engine.reports"):
        value = registry.counter_value(name)
        if value:
            print(f"{name.split('.', 1)[1] + ':':10s}{value}")
    # Verdict-cache and write-coalescing effectiveness (only shown when
    # the run actually consulted the cache / merged writes, so dumps
    # from cache-off runs render exactly as before).
    cache_rows = [
        (name, registry.counter_value(name))
        for name in ("cache.hits", "cache.misses", "cache.evictions",
                     "coalesce.writes_merged")
    ]
    if any(value for _, value in cache_rows):
        for name, value in cache_rows:
            print(f"{name + ':':24s}{value}")
        hits = registry.counter_value("cache.hits")
        lookups = hits + registry.counter_value("cache.misses")
        if lookups:
            print(f"{'cache.hit_rate:':24s}{hits / lookups:.1%}")
    rows = stage_breakdown(registry)
    grand_total = sum(total for _, total, _ in rows)
    print()
    print(
        f"{'stage':18s} {'total(ms)':>10s} {'count':>8s} "
        f"{'mean(us)':>10s} {'share':>7s}"
    )
    for label, total_ns, count in rows:
        mean_us = (total_ns / count) / 1e3 if count else 0.0
        share = (total_ns / grand_total) * 100.0 if grand_total else 0.0
        print(
            f"{label:18s} {total_ns / 1e6:>10.3f} {count:>8d} "
            f"{mean_us:>10.2f} {share:>6.1f}%"
        )
    if grand_total == 0:
        print(
            "(no stage timings recorded -- rerun the check with "
            "PMTEST_METRICS=full or --metrics-json)"
        )
    return 0


def _remote_stats(args: argparse.Namespace) -> int:
    """``repro stats --connect``: one live snapshot (or flight dump)."""
    from repro.client import CheckingClient, DaemonError

    try:
        client = CheckingClient(
            args.connect, tenant=args.tenant, deadline=args.deadline
        )
    except (ValueError, DaemonError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.flight:
            payload = client.fetch_flight()
        else:
            payload = client.stats_once()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    except DaemonError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        client.abort()  # clean EOF at a frame boundary, not a drain


def _format_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024
    return f"{n}B"  # pragma: no cover - unreachable


def _render_top(payload: dict, prev: Optional[dict]) -> List[str]:
    """Render one stats payload as the ``repro top`` table."""
    sessions = payload.get("sessions", {})
    admission = payload.get("admission", {})
    lines = [
        (
            f"pmtest daemon  sessions: {sessions.get('active', 0)} active"
            f" / {sessions.get('served', 0)} served"
            f" / {sessions.get('aborted', 0)} aborted"
            f" / {sessions.get('rejected', 0)} rejected"
        ),
        (
            f"traces: {payload.get('traces_accepted', 0)}"
            f"   inflight: {_format_bytes(admission.get('inflight_bytes', 0))}"
            f"/{_format_bytes(admission.get('inflight_limit', 0))}"
            f"   sheds: {admission.get('frames_shed', 0)}"
        ),
        "",
        (
            f"{'TENANT':<16} {'SESS':>5} {'TRACES':>9} {'TR/S':>8} "
            f"{'QUEUED':>7} {'SHEDS':>6} {'P99MS':>8}"
        ),
    ]
    tenants = payload.get("tenants", {})
    prev_tenants = prev.get("tenants", {}) if prev else {}
    dt = payload.get("ts", 0) - prev.get("ts", 0) if prev else 0.0
    for tenant, stats in sorted(tenants.items()):
        rate = "-"
        if prev and dt > 0:
            before = prev_tenants.get(tenant, {}).get("traces", 0)
            rate = f"{(stats.get('traces', 0) - before) / dt:.1f}"
        frame = stats.get("frame_ns")
        p99 = f"{frame['p99'] / 1e6:.2f}" if frame else "-"
        lines.append(
            f"{tenant[:16]:<16} {stats.get('sessions', 0):>5} "
            f"{stats.get('traces', 0):>9} {rate:>8} "
            f"{stats.get('queued_traces', 0):>7} "
            f"{stats.get('frames_shed', 0):>6} {p99:>8}"
        )
    if not tenants:
        lines.append("(no tenants yet)")
    return lines


def _top(args: argparse.Namespace) -> int:
    """``repro top``: refreshing per-tenant view of a running daemon."""
    from repro.client import CheckingClient, DaemonError

    if args.interval <= 0:
        print("error: --interval must be > 0", file=sys.stderr)
        return 2
    try:
        client = CheckingClient(
            args.connect, tenant=args.tenant, deadline=args.deadline
        )
    except (ValueError, DaemonError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.once:
            print("\n".join(_render_top(client.stats_once(), None)))
            return 0
        prev: Optional[dict] = None
        height = 0
        shown = 0
        for payload in client.stats_stream(int(args.interval * 1000)):
            lines = _render_top(payload, prev)
            if height:
                # Repaint in place: cursor up over the previous frame,
                # clear to end of screen, redraw.
                sys.stdout.write(f"\x1b[{height}F\x1b[0J")
            sys.stdout.write("\n".join(lines) + "\n")
            sys.stdout.flush()
            prev = payload
            height = len(lines)
            shown += 1
            if args.iterations and shown >= args.iterations:
                return 0
        return 0
    except KeyboardInterrupt:
        return 0
    except DaemonError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        client.abort()


def _trace_stats(traces) -> int:
    events = sum(len(trace) for trace in traces)
    ops = Counter(
        event.op.name for trace in traces for event in trace.events
    )
    threads = sorted({trace.thread_name for trace in traces})
    print(f"traces:  {len(traces)}")
    print(f"events:  {events}")
    print(f"threads: {', '.join(threads) if threads else '-'}")
    for name, count in ops.most_common():
        print(f"  {name:14s} {count}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
