"""Figure 10b: PMTest overhead breakdown (framework vs checkers).

Paper result: because checking is decoupled from execution, the checkers
contribute only 18.9%–37.8% of PMTest's total overhead; the rest is
operation tracking and framework plumbing.  Here "framework" is a run
with tracking and the engine active but no checkers placed; the delta to
the fully checked run is the checker cost.
"""

import pytest

from _harness import pedantic, prepare_micro, record, slowdown

STRUCTURES = ["ctree", "btree", "rbtree", "hashmap_tx", "hashmap_atomic"]
TX_SIZES = [64, 1024]
MODES = ["none", "pmtest-framework", "pmtest"]


@pytest.mark.parametrize("structure", STRUCTURES)
@pytest.mark.parametrize("value_size", TX_SIZES)
@pytest.mark.parametrize("tool", MODES)
def test_fig10b(benchmark, bench_rounds, structure, value_size, tool):
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_micro(structure, value_size, tool, n_ops=100),
    )
    record("fig10b", (structure, value_size, tool), benchmark)


def test_fig10b_shape(benchmark):
    """Checkers must cost extra, but the framework must dominate."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    framework_parts = []
    for structure in STRUCTURES:
        for size in TX_SIZES:
            base = (structure, size, "none")
            framework = slowdown(
                "fig10b", (structure, size, "pmtest-framework"), base
            )
            full = slowdown("fig10b", (structure, size, "pmtest"), base)
            if framework is None or full is None:
                continue
            if full > 1.0 and framework > 1.0:
                framework_parts.append((framework - 1) / max(full - 1, 1e-9))
    if not framework_parts:
        pytest.skip("fig10b benchmarks did not run")
    # The tracking/framework share of total overhead is the majority on
    # average (paper: checkers are only ~19-38% of it).
    mean_share = sum(framework_parts) / len(framework_parts)
    assert mean_share > 0.4, mean_share
