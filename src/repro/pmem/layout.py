"""Cacheline geometry.

Flush instructions operate on whole cache lines, so persistence tracking
in the machine (and in the pmemcheck baseline) is cacheline-granular.  The
line size matches the paper's evaluation hardware (Intel Skylake, 64 B).
"""

from __future__ import annotations

from typing import Iterator, Tuple

#: Cache line size in bytes.
CACHELINE = 64


def line_index(addr: int) -> int:
    """The index of the cache line containing ``addr``."""
    return addr // CACHELINE


def line_base(addr: int) -> int:
    """The first address of the cache line containing ``addr``."""
    return addr - (addr % CACHELINE)


def line_span(addr: int, size: int) -> range:
    """Indices of every cache line touched by ``[addr, addr+size)``."""
    if size <= 0:
        raise ValueError("size must be positive")
    return range(line_index(addr), line_index(addr + size - 1) + 1)


def split_by_line(addr: int, size: int) -> Iterator[Tuple[int, int, int]]:
    """Split a range into per-line fragments.

    Yields ``(line, frag_addr, frag_size)`` for each cache line the range
    touches.  Stores that straddle line boundaries can persist partially
    (only line granularity is atomic with respect to write-back), so the
    machine records them fragment by fragment.
    """
    end = addr + size
    cursor = addr
    while cursor < end:
        line = line_index(cursor)
        next_line_base = (line + 1) * CACHELINE
        frag_end = min(end, next_line_base)
        yield line, cursor, frag_end - cursor
        cursor = frag_end
