"""Testing results: FAIL/WARN reports and aggregate outcomes.

The checking engine reports ``FAIL`` outputs for crash-consistency bugs
(e.g. a missing fence) and ``WARNING`` outputs for performance bugs (e.g. a
redundant writeback), together with the source file and line of the failing
checker or offending operation (paper Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, List, Optional

from repro.core.events import SourceSite


class Level(Enum):
    """Severity of a report."""

    FAIL = "FAIL"
    WARN = "WARN"

    def __str__(self) -> str:
        return self.value


class ReportCode(Enum):
    """Stable identifiers for every diagnostic PMTest can emit."""

    # Crash-consistency failures (FAIL)
    NOT_PERSISTED = "not-persisted"  # isPersist violated
    NOT_ORDERED = "not-ordered"  # isOrderedBefore violated
    MISSING_LOG = "missing-log"  # TX write without a prior TX_ADD backup
    INCOMPLETE_TX = "incomplete-tx"  # transaction never terminated
    TX_NOT_PERSISTED = "tx-not-persisted"  # TX updates not durable at scope end
    # Performance warnings (WARN)
    DUP_FLUSH = "duplicate-flush"  # second writeback while one is in flight
    UNNECESSARY_FLUSH = "unnecessary-flush"  # writeback of unmodified data
    DUP_LOG = "duplicate-log"  # object logged more than once in one TX
    # Usage problems (WARN)
    ORDER_UNKNOWN = "order-unknown"  # isOrderedBefore over never-written data

    def __str__(self) -> str:
        return self.value


#: Codes that denote crash-consistency bugs.
FAIL_CODES = frozenset(
    {
        ReportCode.NOT_PERSISTED,
        ReportCode.NOT_ORDERED,
        ReportCode.MISSING_LOG,
        ReportCode.INCOMPLETE_TX,
        ReportCode.TX_NOT_PERSISTED,
    }
)


@dataclass(frozen=True, slots=True)
class Report:
    """One diagnostic emitted while checking a trace."""

    level: Level
    code: ReportCode
    message: str
    site: Optional[SourceSite] = None  # the checker or op that fired
    related_site: Optional[SourceSite] = None  # e.g. the write that never persisted
    trace_id: int = -1
    seq: int = -1  # index of the triggering event within its trace

    def __str__(self) -> str:
        where = f" @{self.site}" if self.site else ""
        related = f" (see {self.related_site})" if self.related_site else ""
        return f"[{self.level}] {self.code}: {self.message}{where}{related}"


@dataclass(slots=True)
class TestResult:
    """Aggregate outcome of checking one or more traces."""

    #: not a pytest test class, despite the name
    __test__ = False

    reports: List[Report] = field(default_factory=list)
    traces_checked: int = 0
    events_checked: int = 0
    checkers_evaluated: int = 0
    #: infrastructure events (worker respawns, backend degradation, ...)
    #: observed while producing this result.  Diagnostics keep verdicts
    #: honest after recovery but are *not* part of the verdict: they are
    #: excluded from the wire encoding and from cross-backend
    #: equivalence comparisons.
    diagnostics: List[str] = field(default_factory=list)
    #: descriptive facts about how the result was produced (backend
    #: name, degradation flag, per-backend details).  Like diagnostics,
    #: metadata is not part of the verdict and is excluded from the wire
    #: encoding; unlike diagnostics it is keyed, so merging is
    #: deterministic regardless of worker completion order.
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def failures(self) -> List[Report]:
        return [r for r in self.reports if r.level is Level.FAIL]

    @property
    def warnings(self) -> List[Report]:
        return [r for r in self.reports if r.level is Level.WARN]

    @property
    def passed(self) -> bool:
        """Whether no crash-consistency bug was detected."""
        return not self.failures

    @property
    def clean(self) -> bool:
        """Whether neither failures nor warnings were detected."""
        return not self.reports

    def codes(self) -> List[ReportCode]:
        return [r.code for r in self.reports]

    def count(self, code: ReportCode) -> int:
        return sum(1 for r in self.reports if r.code is code)

    def merge(self, other: "TestResult") -> None:
        """Fold another result into this one (used by the worker pool)."""
        self.reports.extend(other.reports)
        self.traces_checked += other.traces_checked
        self.events_checked += other.events_checked
        self.checkers_evaluated += other.checkers_evaluated
        self.diagnostics.extend(other.diagnostics)
        if other.metadata:
            self.metadata = _merge_metadata(self.metadata, other.metadata)

    def summary(self) -> str:
        return (
            f"{self.traces_checked} trace(s), {self.events_checked} event(s), "
            f"{self.checkers_evaluated} checker(s): "
            f"{len(self.failures)} FAIL, {len(self.warnings)} WARN"
        )


def _merge_metadata(
    ours: Dict[str, Any], theirs: Dict[str, Any]
) -> Dict[str, Any]:
    """Deterministically combine two metadata dicts.

    Worker results arrive in completion order, which varies run to run;
    the merged metadata must not.  Keys are emitted in sorted order and
    every per-key combination rule is symmetric except the scalar
    conflict case, which is resolved by ordering the *values* (via their
    ``repr``), not by which side arrived first:

    * booleans OR — a flag raised by either side stays raised;
    * numbers (non-bool) add — counts and nanoseconds accumulate;
    * lists concatenate, then sort by ``repr`` — multiset semantics;
    * dicts merge recursively;
    * equal values collapse to that value;
    * anything else keeps the side whose ``repr`` sorts first.
    """
    merged: Dict[str, Any] = {}
    for key in sorted(set(ours) | set(theirs)):
        if key not in ours:
            merged[key] = theirs[key]
        elif key not in theirs:
            merged[key] = ours[key]
        else:
            merged[key] = _merge_metadata_value(ours[key], theirs[key])
    return merged


def _merge_metadata_value(a: Any, b: Any) -> Any:
    numeric = (int, float)
    if isinstance(a, bool) and isinstance(b, bool):
        return a or b
    if (
        isinstance(a, numeric)
        and isinstance(b, numeric)
        and not isinstance(a, bool)
        and not isinstance(b, bool)
    ):
        return a + b
    if isinstance(a, list) and isinstance(b, list):
        return sorted(a + b, key=repr)
    if isinstance(a, dict) and isinstance(b, dict):
        return _merge_metadata(a, b)
    if a == b:
        return a
    return min(a, b, key=repr)


def merge_results(results: Iterable[TestResult]) -> TestResult:
    """Combine per-trace results into one aggregate."""
    total = TestResult()
    for result in results:
        total.merge(result)
    return total
