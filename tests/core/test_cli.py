"""Tests for the offline trace-checking CLI."""

import json

import pytest

from repro.cli import main
from repro.core.api import PMTestSession
from repro.core.traceio import TraceRecorder, dump_traces


def record_buggy_trace(path):
    recorder = TraceRecorder()
    session = PMTestSession(workers=0, sink=recorder)
    session.thread_init()
    session.start()
    session.write(0x10, 8)
    session.clwb(0x10, 8)
    session.sfence()
    session.write(0x50, 8)  # never flushed
    session.is_persist(0x10, 8)
    session.is_persist(0x50, 8)
    session.exit()
    dump_traces(recorder.traces, path)


def record_clean_hops_trace(path):
    recorder = TraceRecorder()
    session = PMTestSession(workers=0, sink=recorder)
    session.thread_init()
    session.start()
    session.write(0x10, 8)
    session.ofence()
    session.write(0x50, 8)
    session.dfence()
    session.is_ordered_before(0x10, 8, 0x50, 8)
    session.exit()
    dump_traces(recorder.traces, path)


class TestCheckCommand:
    def test_failing_trace_exits_1(self, tmp_path, capsys):
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        assert main(["check", str(path)]) == 1
        out = capsys.readouterr().out
        assert "1 FAIL" in out
        assert "not-persisted" in out

    def test_quiet_suppresses_reports(self, tmp_path, capsys):
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        main(["check", str(path), "--quiet"])
        out = capsys.readouterr().out
        assert "not-persisted" not in out
        assert "FAIL" in out

    def test_clean_trace_exits_0(self, tmp_path):
        path = tmp_path / "hops.pmtrace"
        record_clean_hops_trace(path)
        assert main(["check", str(path), "--model", "hops"]) == 0

    def test_model_selection_matters(self, tmp_path):
        # The same x86 trace under eADR: the unflushed write IS durable
        # after its fence... but there is no fence after it, so it still
        # fails; the flushed one is fine and additionally warned about.
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        assert main(["check", str(path), "--model", "eadr"]) == 1

    def test_workers_mode(self, tmp_path, capsys):
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        assert main(["check", str(path), "--workers", "2"]) == 1

    def test_max_reports_truncates(self, tmp_path, capsys):
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        main(["check", str(path), "--max-reports", "0"])
        out = capsys.readouterr().out
        assert "more" in out

    def test_missing_file_exits_2(self, capsys):
        assert main(["check", "/nonexistent.pmtrace"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_bad_format_exits_2(self, tmp_path, capsys):
        path = tmp_path / "junk.pmtrace"
        path.write_text("not a trace\n")
        assert main(["check", str(path)]) == 2


class TestResilienceFlags:
    def test_check_timeout_and_retries_accepted(self, tmp_path):
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        assert main([
            "check", str(path), "--workers", "2", "--backend", "thread",
            "--check-timeout", "30", "--max-retries", "3",
        ]) == 1

    def test_no_fallback_accepted(self, tmp_path):
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        assert main(["check", str(path), "--no-fallback"]) == 1

    def test_negative_max_retries_exits_2(self, tmp_path, capsys):
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        assert main(["check", str(path), "--max-retries", "-1"]) == 2
        assert "--max-retries" in capsys.readouterr().err

    def test_chaos_seed_does_not_change_the_verdict(self, tmp_path, capsys):
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        assert main([
            "check", str(path), "--workers", "2", "--backend", "thread",
            "--chaos-seed", "3", "--check-timeout", "30",
        ]) == 1
        out = capsys.readouterr().out
        assert "1 FAIL" in out


class TestStatsCommand:
    def test_stats_output(self, tmp_path, capsys):
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "traces:  1" in out
        assert "WRITE" in out
        assert "SFENCE" in out

    def test_stats_missing_file_exits_2(self, capsys):
        assert main(["stats", "/nonexistent.pmtrace"]) == 2
        assert "no such file" in capsys.readouterr().err


class TestObservabilityFlags:
    def test_metrics_json_and_stats_breakdown(self, tmp_path, capsys):
        trace = tmp_path / "run.pmtrace"
        metrics = tmp_path / "metrics.json"
        record_buggy_trace(trace)
        assert main(
            ["check", str(trace), "--metrics-json", str(metrics), "--quiet"]
        ) == 1
        payload = json.loads(metrics.read_text())
        assert payload["format"] == "pmtest-metrics"
        assert payload["level"] == "full"  # forced even with metrics off
        assert payload["counters"]["engine.traces"] == 1
        capsys.readouterr()
        assert main(["stats", str(metrics)]) == 0
        out = capsys.readouterr().out
        for stage in ("trace ingest", "shadow update",
                      "checker validate", "drain"):
            assert stage in out
        assert "metrics level: full" in out

    def test_trace_out_writes_chrome_trace(self, tmp_path):
        trace = tmp_path / "run.pmtrace"
        out = tmp_path / "spans.json"
        record_buggy_trace(trace)
        main(["check", str(trace), "--trace-out", str(out), "--quiet"])
        events = json.loads(out.read_text())
        names = [e["name"] for e in events]
        assert "submit" in names
        assert "drain" in names

    def test_metrics_json_with_workers(self, tmp_path):
        trace = tmp_path / "run.pmtrace"
        metrics = tmp_path / "metrics.json"
        record_buggy_trace(trace)
        assert main([
            "check", str(trace), "--workers", "2", "--backend", "thread",
            "--metrics-json", str(metrics), "--quiet",
        ]) == 1
        payload = json.loads(metrics.read_text())
        assert payload["counters"]["engine.traces"] == 1

    def test_metrics_json_unwritable_exits_2(self, tmp_path, capsys):
        trace = tmp_path / "run.pmtrace"
        record_buggy_trace(trace)
        bad = tmp_path / "no" / "such" / "dir" / "m.json"
        assert main(
            ["check", str(trace), "--metrics-json", str(bad), "--quiet"]
        ) == 2
        assert "cannot write" in capsys.readouterr().err
