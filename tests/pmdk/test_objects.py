"""Tests for the persistent struct field system."""

import pytest

from repro.instr.runtime import PMRuntime
from repro.pmem.machine import PMMachine
from repro.pmdk.objects import (
    ArrayField,
    BytesField,
    I64Field,
    PStruct,
    PtrField,
    U64Field,
)
from repro.pmdk.pool import PMPool


class Point(PStruct):
    x = U64Field()
    y = I64Field()
    tag = BytesField(16)
    neighbors = ArrayField(4)
    owner = PtrField()


@pytest.fixture
def pool():
    return PMPool(PMRuntime(machine=PMMachine(1 << 20)))


class TestLayout:
    def test_offsets_in_declaration_order(self):
        assert Point._fields["x"].offset == 0
        assert Point._fields["y"].offset == 8
        assert Point._fields["tag"].offset == 16
        assert Point._fields["neighbors"].offset == 32
        assert Point._fields["owner"].offset == 64
        assert Point.SIZE == 72

    def test_inheritance_extends_layout(self):
        class Extended(Point):
            extra = U64Field()

        assert Extended._fields["extra"].offset == Point.SIZE
        assert Extended.SIZE == Point.SIZE + 8
        assert Extended._fields["x"].offset == 0

    def test_field_range(self, pool):
        p = Point.alloc(pool)
        addr, size = p.field_range("tag")
        assert addr == p.addr + 16
        assert size == 16

    def test_invalid_field_sizes_rejected(self):
        with pytest.raises(ValueError):
            BytesField(0)
        with pytest.raises(ValueError):
            ArrayField(0)


class TestFieldAccess:
    def test_u64_roundtrip(self, pool):
        p = Point.alloc(pool)
        p.x = 12345
        assert p.x == 12345

    def test_i64_negative(self, pool):
        p = Point.alloc(pool)
        p.y = -42 & ((1 << 64) - 1)
        assert p.y == -42

    def test_bytes_padded(self, pool):
        p = Point.alloc(pool)
        p.tag = b"abc"
        assert p.tag == b"abc".ljust(16, b"\0")

    def test_bytes_too_long_rejected(self, pool):
        p = Point.alloc(pool)
        with pytest.raises(ValueError):
            p.tag = b"x" * 17

    def test_array_elements(self, pool):
        p = Point.alloc(pool)
        p.neighbors[2] = 99
        assert p.neighbors[2] == 99
        assert p.neighbors[0] == 0
        assert len(p.neighbors) == 4

    def test_array_bounds(self, pool):
        p = Point.alloc(pool)
        with pytest.raises(IndexError):
            p.neighbors[4] = 1

    def test_array_not_assignable_directly(self, pool):
        p = Point.alloc(pool)
        with pytest.raises(AttributeError):
            p.neighbors = [1, 2, 3, 4]

    def test_array_range_of(self, pool):
        p = Point.alloc(pool)
        addr, size = p.neighbors.range_of(1)
        assert addr == p.addr + 32 + 8
        assert size == 8

    def test_alloc_zeroes(self, pool):
        p = Point.alloc(pool)
        assert p.x == 0 and p.tag == b"\0" * 16

    def test_at_views_existing(self, pool):
        p = Point.alloc(pool)
        p.x = 7
        view = Point.at(pool, p.addr)
        assert view.x == 7
        assert view == p
        assert hash(view) == hash(p)

    def test_invalid_address_rejected(self, pool):
        with pytest.raises(ValueError):
            Point(pool, 0)

    def test_writes_visible_through_machine(self, pool):
        p = Point.alloc(pool)
        p.x = 0xDEAD
        assert pool.runtime.machine.volatile.read_u64(p.addr) == 0xDEAD
