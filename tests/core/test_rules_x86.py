"""Unit tests for the x86 checking rules (paper Section 4.4)."""

import pytest

from repro.core.engine import CheckingEngine
from repro.core.events import Event, Op, Trace
from repro.core.reports import Level, ReportCode
from repro.core.rules import UnsupportedOperation, X86Rules
from repro.core.rules.base import PersistencyRules
from repro.core.intervals import INF


def check(*ops) -> "TestResult":
    trace = Trace(0)
    for op in ops:
        trace.append(op)
    return CheckingEngine(X86Rules()).check_trace(trace)


def W(addr, size=8):
    return Event(Op.WRITE, addr, size)


def NT(addr, size=8):
    return Event(Op.WRITE_NT, addr, size)


def CLWB(addr, size=8):
    return Event(Op.CLWB, addr, size)


def SFENCE():
    return Event(Op.SFENCE)


def PERSIST(addr, size=8):
    return Event(Op.CHECK_PERSIST, addr, size)


def ORDER(a, sa, b, sb):
    return Event(Op.CHECK_ORDER, a, sa, b, sb)


class TestDurability:
    def test_write_flush_fence_is_persistent(self):
        result = check(W(0), CLWB(0), SFENCE(), PERSIST(0))
        assert result.clean

    def test_unwritten_range_trivially_persistent(self):
        result = check(W(0), CLWB(0), SFENCE(), PERSIST(0x1000))
        assert result.clean

    def test_write_without_flush_fails(self):
        result = check(W(0), SFENCE(), PERSIST(0))
        assert result.count(ReportCode.NOT_PERSISTED) == 1

    def test_write_flush_without_fence_fails(self):
        result = check(W(0), CLWB(0), PERSIST(0))
        assert result.count(ReportCode.NOT_PERSISTED) == 1

    def test_rewrite_after_persist_reopens_interval(self):
        result = check(W(0), CLWB(0), SFENCE(), W(0), PERSIST(0))
        assert result.count(ReportCode.NOT_PERSISTED) == 1

    def test_partial_flush_fails_for_unflushed_part(self):
        # Write 128 bytes, flush only the first 64.
        result = check(W(0, 128), CLWB(0, 64), SFENCE(), PERSIST(0, 128))
        assert result.count(ReportCode.NOT_PERSISTED) == 1

    def test_nt_store_persists_with_fence_alone(self):
        result = check(NT(0), SFENCE(), PERSIST(0))
        assert result.clean

    def test_nt_store_without_fence_fails(self):
        result = check(NT(0), PERSIST(0))
        assert result.count(ReportCode.NOT_PERSISTED) == 1

    def test_clflushopt_and_clflush_count_as_flushes(self):
        for op in (Op.CLFLUSHOPT, Op.CLFLUSH):
            result = check(W(0), Event(op, 0, 8), SFENCE(), PERSIST(0))
            assert result.clean, op


class TestOrdering:
    def test_ordered_when_fenced_between(self):
        result = check(W(0), CLWB(0), SFENCE(), W(64), ORDER(0, 8, 64, 8))
        assert not result.failures

    def test_same_epoch_not_ordered(self):
        result = check(W(0), W(64), CLWB(0), CLWB(64), SFENCE(), ORDER(0, 8, 64, 8))
        assert result.count(ReportCode.NOT_ORDERED) == 1

    def test_unflushed_first_write_not_ordered(self):
        # A never guaranteed to persist: cannot be ordered before B.
        result = check(W(0), SFENCE(), W(64), CLWB(64), SFENCE(), ORDER(0, 8, 64, 8))
        assert result.count(ReportCode.NOT_ORDERED) == 1

    def test_order_unknown_when_range_unwritten(self):
        result = check(W(0), CLWB(0), SFENCE(), ORDER(0, 8, 0x500, 8))
        assert result.count(ReportCode.ORDER_UNKNOWN) == 1
        assert not result.failures

    def test_order_checked_pairwise_over_subranges(self):
        # Two writes on the B side; only one is unordered w.r.t. A.
        result = check(
            W(0),
            CLWB(0),
            W(64),  # same epoch as A -> unordered
            SFENCE(),
            W(128),  # next epoch -> ordered after A
            ORDER(0, 8, 64, 72),
        )
        assert result.count(ReportCode.NOT_ORDERED) == 1


class TestPerformanceWarnings:
    def test_duplicate_flush_in_flight(self):
        result = check(W(0), CLWB(0), CLWB(0), SFENCE(), PERSIST(0))
        assert result.count(ReportCode.DUP_FLUSH) == 1
        assert result.passed  # still crash consistent

    def test_flush_of_unwritten_data_warns(self):
        result = check(W(0), CLWB(0x100))
        assert result.count(ReportCode.UNNECESSARY_FLUSH) == 1

    def test_flush_of_already_persisted_data_warns(self):
        result = check(W(0), CLWB(0), SFENCE(), CLWB(0))
        assert result.count(ReportCode.UNNECESSARY_FLUSH) == 1

    def test_duplicate_flush_keeps_original_guarantee(self):
        # The dup flush must not delay the persist guarantee.
        result = check(W(0), CLWB(0), CLWB(0), SFENCE(), PERSIST(0))
        assert not result.failures

    def test_clean_flush_no_warning(self):
        result = check(W(0), CLWB(0), SFENCE(), W(0), CLWB(0), SFENCE())
        assert result.clean


class TestEpochSemantics:
    def test_persist_interval_matches_figure7(self):
        """Replay Figure 7's update table against the shadow directly."""
        rules = X86Rules()
        shadow = rules.make_shadow()
        rules.apply_op(shadow, W(0x10, 64))
        [(lo, hi, iv, _)] = rules.persist_intervals(shadow, 0x10, 0x50)
        assert (iv.start, iv.end) == (0, INF)
        rules.apply_op(shadow, CLWB(0x10, 64))
        rules.apply_op(shadow, SFENCE())
        [(lo, hi, iv, _)] = rules.persist_intervals(shadow, 0x10, 0x50)
        assert (iv.start, iv.end) == (0, 1)
        rules.apply_op(shadow, W(0x50, 64))
        [(lo, hi, iv, _)] = rules.persist_intervals(shadow, 0x50, 0x90)
        assert (iv.start, iv.end) == (1, INF)

    def test_fence_only_closes_flushed_intervals(self):
        rules = X86Rules()
        shadow = rules.make_shadow()
        rules.apply_op(shadow, W(0, 8))
        rules.apply_op(shadow, SFENCE())
        [(_, _, iv, _)] = rules.persist_intervals(shadow, 0, 8)
        assert iv.end == INF

    def test_rejects_hops_fences(self):
        rules = X86Rules()
        shadow = rules.make_shadow()
        with pytest.raises(UnsupportedOperation):
            rules.apply_op(shadow, Event(Op.OFENCE))

    def test_supported_ops_declared(self):
        rules = X86Rules()
        assert rules.is_supported(Op.SFENCE)
        assert not rules.is_supported(Op.DFENCE)
        assert isinstance(rules, PersistencyRules)
