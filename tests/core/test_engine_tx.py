"""Engine tests for the transaction machinery (paper Section 5.1)."""

import pytest

from repro.core.engine import CheckingEngine, MalformedTrace
from repro.core.events import Event, Op, Trace
from repro.core.reports import ReportCode


def trace_of(*ops):
    trace = Trace(0)
    for op in ops:
        trace.append(op)
    return trace


def check(*ops):
    return CheckingEngine().check_trace(trace_of(*ops))


def W(addr, size=8):
    return Event(Op.WRITE, addr, size)


def CLWB(addr, size=8):
    return Event(Op.CLWB, addr, size)


def SFENCE():
    return Event(Op.SFENCE)


def TXADD(addr, size=8):
    return Event(Op.TX_ADD, addr, size)


BEGIN = lambda: Event(Op.TX_BEGIN)
END = lambda: Event(Op.TX_END)
CK_START = lambda: Event(Op.TX_CHECK_START)
CK_END = lambda: Event(Op.TX_CHECK_END)


def _good_tx(addr=0):
    """A well-formed transaction body for one 8-byte object."""
    return [
        BEGIN(),
        TXADD(addr),
        W(addr),
        CLWB(addr),
        SFENCE(),
        END(),
    ]


class TestTransactionCompleteness:
    def test_complete_durable_tx_is_clean(self):
        result = check(CK_START(), *_good_tx(), CK_END())
        assert result.clean

    def test_unflushed_update_fails_at_scope_end(self):
        result = check(
            CK_START(), BEGIN(), TXADD(0), W(0), END(), CK_END()
        )
        assert result.count(ReportCode.TX_NOT_PERSISTED) == 1

    def test_unterminated_tx_reports_incomplete(self):
        result = check(CK_START(), BEGIN(), TXADD(0), W(0), CK_END())
        assert result.count(ReportCode.INCOMPLETE_TX) == 1

    def test_trace_end_closes_open_scope(self):
        # Program crashed before TX_CHECKER_END: still detected.
        result = check(CK_START(), BEGIN(), TXADD(0), W(0))
        assert result.count(ReportCode.INCOMPLETE_TX) == 1

    def test_two_sequential_scopes_are_independent(self):
        result = check(
            CK_START(), *_good_tx(0), CK_END(),
            CK_START(), BEGIN(), TXADD(64), W(64), END(), CK_END(),
        )
        # Only the second scope's update is non-durable.
        assert result.count(ReportCode.TX_NOT_PERSISTED) == 1

    def test_modifications_outside_scope_not_checked(self):
        result = check(W(0), CK_START(), *_good_tx(64), CK_END())
        assert result.clean


class TestMissingLog:
    def test_write_without_backup_fails(self):
        result = check(CK_START(), BEGIN(), W(0), CLWB(0), SFENCE(), END(), CK_END())
        assert result.count(ReportCode.MISSING_LOG) == 1

    def test_partial_backup_fails_for_uncovered_part(self):
        result = check(
            CK_START(),
            BEGIN(),
            TXADD(0, 8),
            W(0, 16),  # writes 8 bytes beyond the backup
            CLWB(0, 16),
            SFENCE(),
            END(),
            CK_END(),
        )
        assert result.count(ReportCode.MISSING_LOG) == 1

    def test_every_unlogged_write_is_reported(self):
        # The paper reports the bug "at line 4 and other lines that
        # modify this object".
        result = check(
            CK_START(), BEGIN(), W(0), W(0), CLWB(0), SFENCE(), END(), CK_END()
        )
        assert result.count(ReportCode.MISSING_LOG) == 2

    def test_log_tree_resets_between_transactions(self):
        # Backup in TX1 does not cover a write in TX2.
        result = check(
            CK_START(),
            *_good_tx(0),
            BEGIN(),
            W(0),
            CLWB(0),
            SFENCE(),
            END(),
            CK_END(),
        )
        assert result.count(ReportCode.MISSING_LOG) == 1

    def test_nested_tx_shares_outer_log(self):
        result = check(
            CK_START(),
            BEGIN(),
            TXADD(0),
            BEGIN(),
            W(0),
            CLWB(0),
            SFENCE(),
            END(),
            END(),
            CK_END(),
        )
        assert result.count(ReportCode.MISSING_LOG) == 0

    def test_writes_outside_tx_need_no_log(self):
        result = check(CK_START(), W(0), CLWB(0), SFENCE(), CK_END())
        assert result.count(ReportCode.MISSING_LOG) == 0


class TestDuplicateLog:
    def test_duplicate_tx_add_warns(self):
        result = check(
            CK_START(),
            BEGIN(),
            TXADD(0),
            TXADD(0),
            W(0),
            CLWB(0),
            SFENCE(),
            END(),
            CK_END(),
        )
        assert result.count(ReportCode.DUP_LOG) == 1
        assert result.passed

    def test_duplicate_log_across_nested_tx_warns(self):
        """The paper's Bug 3 shape: helper logs, caller logs again."""
        result = check(
            CK_START(),
            BEGIN(),
            TXADD(0),  # inside helper
            W(0),
            TXADD(0),  # caller logs the same node again
            W(0),
            CLWB(0),
            SFENCE(),
            END(),
            CK_END(),
        )
        assert result.count(ReportCode.DUP_LOG) == 1

    def test_no_warning_outside_check_scope(self):
        result = check(BEGIN(), TXADD(0), TXADD(0), W(0), END())
        assert result.count(ReportCode.DUP_LOG) == 0


class TestExclusion:
    def test_excluded_range_not_tx_checked(self):
        result = check(
            CK_START(),
            Event(Op.EXCLUDE, 0, 8),
            BEGIN(),
            W(0),  # unlogged, unflushed -- but excluded
            END(),
            CK_END(),
        )
        assert result.clean

    def test_include_restores_tracking(self):
        result = check(
            Event(Op.EXCLUDE, 0, 8),
            Event(Op.INCLUDE, 0, 8),
            CK_START(),
            BEGIN(),
            W(0),
            END(),
            CK_END(),
        )
        assert result.count(ReportCode.MISSING_LOG) == 1

    def test_exclusion_is_range_based(self):
        result = check(
            CK_START(),
            Event(Op.EXCLUDE, 0, 8),
            BEGIN(),
            W(0, 16),  # half excluded, half tracked
            END(),
            CK_END(),
        )
        assert result.count(ReportCode.MISSING_LOG) == 1
        assert result.count(ReportCode.TX_NOT_PERSISTED) == 1

    def test_excluded_then_checker_passes_over_it(self):
        result = check(
            Event(Op.EXCLUDE, 0, 8),
            W(0),
            Event(Op.CHECK_PERSIST, 0, 8),
        )
        # The write was never tracked, so isPersist sees untouched memory.
        assert result.clean


class TestMalformedTraces:
    def test_unbalanced_tx_end_raises(self):
        with pytest.raises(MalformedTrace):
            check(END())

    def test_balanced_nesting_ok(self):
        result = check(BEGIN(), BEGIN(), END(), END())
        assert result.clean
