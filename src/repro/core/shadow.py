"""Shadow memory: persistency status per modified address range.

PMTest maintains, per trace, a shadow of PM that records for every modified
address range when its latest write executed and when (if ever) it was
written back (paper Section 4.4).  The shadow is an
:class:`~repro.core.interval_map.IntervalMap` over segment-state values
defined by the active persistency model, plus the *global status*: the
epoch timestamp that increments at every ordering fence.

A key implementation decision (documented here because it differs from the
paper's eager description while computing the same answer): fences do *not*
eagerly rewrite every open interval in the shadow.  Because the timestamp
increments at **every** fence, the first fence after a flush issued in
epoch ``t`` is exactly the one that set the timestamp to ``t + 1``; so the
persist interval of a flushed write can be derived lazily as
``(write_epoch, flush_epoch + 1)`` once ``timestamp > flush_epoch``.  This
turns `sfence` from an ``O(segments)`` sweep into ``O(1)`` while producing
intervals identical to the paper's Figure 7 walk-through (the unit tests
replay that figure literally).  HOPS ``dfence`` closures are derived the
same way from a sorted list of dfence epochs.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass
from typing import List, Optional

from repro.core.events import SourceSite
from repro.core.interval_map import IntervalMap
from repro.core.intervals import INF, Epoch, Interval


@dataclass(frozen=True, slots=True)
class SegmentState:
    """Persistency status of one shadow-memory segment.

    ``write_epoch``
        Epoch of the last write to this range (the persist interval start).
    ``flush_epoch``
        Epoch in which a writeback (clwb/clflush/clflushopt, or the store
        itself for non-temporal writes) was issued for this range, or
        ``None`` if the write has not been flushed.  Unused under HOPS.
    ``write_site`` / ``flush_site``
        Source locations for diagnostics.
    """

    write_epoch: int
    flush_epoch: Optional[int] = None
    write_site: Optional[SourceSite] = None
    flush_site: Optional[SourceSite] = None

    def with_flush(self, epoch: int, site: Optional[SourceSite]) -> "SegmentState":
        return SegmentState(self.write_epoch, epoch, self.write_site, site)


class ShadowMemory:
    """Per-trace shadow of PM state under one persistency model."""

    __slots__ = ("pm", "timestamp", "dfence_epochs")

    def __init__(self) -> None:
        #: address range -> :class:`SegmentState`
        self.pm: IntervalMap[SegmentState] = IntervalMap()
        #: the global epoch counter; incremented by every ordering fence
        self.timestamp: int = 0
        #: epochs started by a HOPS dfence, ascending (x86 leaves it empty)
        self.dfence_epochs: List[int] = []

    def advance(self) -> int:
        """Increment the global timestamp (any ordering fence)."""
        self.timestamp += 1
        return self.timestamp

    def record_dfence(self) -> int:
        """Advance the timestamp for a durability fence and remember it."""
        now = self.advance()
        insort(self.dfence_epochs, now)
        return now

    def first_dfence_after(self, epoch: int) -> Epoch:
        """The epoch begun by the first dfence after ``epoch``, or INF."""
        i = bisect_right(self.dfence_epochs, epoch)
        if i < len(self.dfence_epochs):
            return self.dfence_epochs[i]
        return INF

    # ------------------------------------------------------------------
    # Interval derivation
    # ------------------------------------------------------------------
    def x86_interval(self, state: SegmentState) -> Interval:
        """Persist interval of a segment under x86 rules.

        The write may persist from its epoch onward; it is guaranteed
        persistent at the first fence following its flush, i.e. at epoch
        ``flush_epoch + 1`` — provided such a fence has actually executed.
        """
        if state.flush_epoch is not None and self.timestamp > state.flush_epoch:
            return Interval(state.write_epoch, state.flush_epoch + 1)
        return Interval(state.write_epoch, INF)

    def x86_flush_interval(self, state: SegmentState) -> Optional[Interval]:
        """Flush interval of a segment, or ``None`` if never flushed."""
        if state.flush_epoch is None:
            return None
        if self.timestamp > state.flush_epoch:
            return Interval(state.flush_epoch, state.flush_epoch + 1)
        return Interval(state.flush_epoch, INF)

    def hops_interval(self, state: SegmentState) -> Interval:
        """Persist interval under HOPS: closed by the first later dfence."""
        return Interval(state.write_epoch, self.first_dfence_after(state.write_epoch))


def make_shadow_for(rules, shadow_name: str = "object") -> ShadowMemory:
    """Build one trace's shadow with the configured interval store.

    ``object`` keeps :class:`~repro.core.interval_map.IntervalMap`.
    ``array`` swaps ``pm`` for an
    :class:`~repro.core.interval_array.ArrayIntervalMap` over the
    model's state-code table — but only for models that (a) use the
    plain :class:`ShadowMemory` (custom shadow subclasses carry extra
    invariants the swap cannot see) and (b) publish a codec via
    ``rules.state_codec()``.  Anything else quietly keeps the object
    map: the two stores are semantically identical, so the knob is a
    performance choice, never a correctness one.
    """
    shadow = rules.make_shadow()
    if shadow_name == "array" and type(shadow) is ShadowMemory:
        codec = rules.state_codec()
        if codec is not None:
            from repro.core.interval_array import ArrayIntervalMap

            shadow.pm = ArrayIntervalMap(codec=codec)
    return shadow
