"""Adaptive epoch-shard planning for the zero-copy shard plane.

Whether splitting a trace across workers pays depends on how expensive
replay actually is on this host: a 10k-event trace is worth sharding
when replay costs ~350 ns/event but not when the verdict cache answers
in microseconds.  The fixed ``--shard-min-events`` threshold bakes one
answer in; :class:`ShardPlanner` instead *measures* per-event replay
cost and sizes shards so each one carries roughly
``TARGET_SHARD_NS`` of work.

Three modes:

``off``
    Never shard (the default when no shard knob is set).
``fixed``
    The historical behaviour: shard any trace with at least
    ``min_events`` events into one shard per worker.
``auto``
    Plan from a per-event replay-cost estimate.  The estimate starts
    at a conservative seed and converges via exponentially weighted
    updates from two feeds:

    * :meth:`observe` — drain wall-time over events drained, the
      always-available coarse signal; and
    * :meth:`absorb` — the precise signal from a full
      :class:`~repro.core.metrics.MetricsRegistry` snapshot
      (``stage.shadow_update.ns`` + ``stage.checker_validate.ns``
      over ``engine.events``), when full metrics are on.

    Both feeds are deterministic functions of their inputs, so tests
    inject measurements instead of timing real work.

The planner is deliberately not thread-safe; each
:class:`~repro.core.workers.WorkerPool` owns one and drives it from
its own submit/drain path.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = [
    "PLAN_ENV_VAR",
    "PLAN_MODES",
    "ShardPlanner",
    "resolve_plan_mode",
]

#: Environment override for the planning mode (``off``/``fixed``/
#: ``auto``); unset or empty defers to the constructor arguments.
PLAN_ENV_VAR = "PMTEST_SHARD_PLAN"

PLAN_MODES = ("off", "fixed", "auto")

#: Work per shard the auto planner aims for.  Dispatch + merge overhead
#: per shard is tens of microseconds with arena descriptors; 0.5 ms of
#: replay per shard keeps that under ~10% while still splitting real
#: traces aggressively.
TARGET_SHARD_NS = 500_000

#: Never produce shards smaller than this many events — below it the
#: silent-prefix fast-forward dominates the shard's own checking work.
FLOOR_EVENTS = 512

#: Per-event replay-cost seed (ns) before any measurement arrives;
#: roughly the object engine on commodity hardware, i.e. pessimistic
#: for the columnar engine, so the first plans under-shard rather than
#: over-shard.
SEED_NS_PER_EVENT = 350.0

#: EWMA smoothing factor for measurement updates.
_ALPHA = 0.3


def resolve_plan_mode(
    shard_plan: Optional[str], shard_min_events: Optional[int]
) -> str:
    """The effective planning mode from knob + env + threshold.

    An explicit ``shard_plan`` wins; otherwise ``PMTEST_SHARD_PLAN``;
    otherwise a set ``shard_min_events`` implies the historical
    ``fixed`` mode and nothing at all means ``off``.
    """
    if shard_plan is None:
        shard_plan = os.environ.get(PLAN_ENV_VAR) or None
    if shard_plan is None:
        return "fixed" if shard_min_events is not None else "off"
    if shard_plan not in PLAN_MODES:
        raise ValueError(
            f"unknown shard plan {shard_plan!r}; expected one of "
            f"{', '.join(PLAN_MODES)}"
        )
    return shard_plan


class ShardPlanner:
    """Decide how many epoch shards a trace should split into.

    Parameters
    ----------
    mode:
        ``off``, ``fixed`` or ``auto`` (see module docstring).
    min_events:
        The ``fixed`` mode threshold (also the floor in ``auto`` mode
        when set lower than :data:`FLOOR_EVENTS` it is ignored —
        ``auto`` never goes below the floor).
    target_shard_ns / floor_events / seed_ns_per_event:
        Auto-mode tuning; the defaults are module constants so tests
        can pin them.
    """

    def __init__(
        self,
        mode: str = "off",
        *,
        min_events: Optional[int] = None,
        target_shard_ns: int = TARGET_SHARD_NS,
        floor_events: int = FLOOR_EVENTS,
        seed_ns_per_event: float = SEED_NS_PER_EVENT,
    ) -> None:
        if mode not in PLAN_MODES:
            raise ValueError(
                f"unknown shard plan {mode!r}; expected one of "
                f"{', '.join(PLAN_MODES)}"
            )
        if mode == "fixed" and (min_events is None or min_events < 1):
            raise ValueError("fixed shard planning needs min_events >= 1")
        self.mode = mode
        self.min_events = min_events
        self._target_ns = max(1, int(target_shard_ns))
        self._floor = max(1, int(floor_events))
        self._ns_per_event = float(seed_ns_per_event)
        self._observations = 0
        # Cumulative counter watermarks for absorb() deltas.
        self._seen_events = 0
        self._seen_ns = 0

    # ------------------------------------------------------------------
    @property
    def ns_per_event(self) -> float:
        """Current per-event replay-cost estimate (ns)."""
        return self._ns_per_event

    @property
    def observations(self) -> int:
        """How many measurements have folded into the estimate."""
        return self._observations

    # ------------------------------------------------------------------
    def plan(self, n_events: int, num_workers: int) -> int:
        """Shards for an ``n_events`` trace on ``num_workers`` workers.

        Returns ``0`` when the trace should not be sharded at all and
        ``>= 2`` otherwise; never returns ``1`` (a single shard is the
        unsharded path by definition).
        """
        if self.mode == "off" or num_workers < 2 or n_events <= 0:
            return 0
        if self.mode == "fixed":
            assert self.min_events is not None
            return num_workers if n_events >= self.min_events else 0
        # auto: size shards to TARGET_SHARD_NS of estimated work, but
        # never smaller than the floor and never more than one per
        # worker.
        by_cost = int(n_events * self._ns_per_event // self._target_ns)
        by_floor = n_events // self._floor
        shards = min(num_workers, by_cost, by_floor)
        return shards if shards >= 2 else 0

    # ------------------------------------------------------------------
    def observe(self, events: int, ns: int) -> None:
        """Fold one coarse measurement (``events`` drained in ``ns``)."""
        if events <= 0 or ns <= 0:
            return
        self._update(ns / events)

    def absorb(self, registry) -> None:
        """Fold the precise per-event cost from a metrics snapshot.

        Reads the cumulative replay-stage counters
        (``stage.shadow_update.ns`` + ``stage.checker_validate.ns``
        over ``engine.events``) and folds only the delta since the last
        absorb, so repeated snapshots of the same registry are safe.
        No-op when the registry lacks the counters (metrics off or
        basic).
        """
        if registry is None:
            return
        events = registry.counter_value("engine.events", 0)
        ns = (
            registry.counter_value("stage.shadow_update.ns", 0)
            + registry.counter_value("stage.checker_validate.ns", 0)
        )
        d_events = events - self._seen_events
        d_ns = ns - self._seen_ns
        if d_events <= 0 or d_ns <= 0:
            return
        self._seen_events = events
        self._seen_ns = ns
        self._update(d_ns / d_events)

    def _update(self, per_event_ns: float) -> None:
        self._ns_per_event += _ALPHA * (per_event_ns - self._ns_per_event)
        self._observations += 1
