"""The asyncio checking server (``repro serve``).

One :class:`CheckingServer` listens on TCP and/or a Unix domain socket
and runs one coroutine per client session.  A session is a handshake
(``hello``/``welcome``), a stream of length-prefixed PMTB trace frames,
and any number of ``drain`` requests answered with ``verdict`` frames;
``bye`` (or EOF) ends it.

Correctness invariant: every session owns a private
:class:`~repro.core.workers.WorkerPool` configured exactly like a
library-mode pool, so a session's verdict is byte-identical to checking
the same traces in-process — the daemon adds transport, admission and
scheduling, never checking semantics.  Session isolation also bounds
memory: a pool's cumulative results die with its session instead of
accreting for the life of the daemon.

Backpressure path (the overload story, end to end):

1. Each trace frame passes the :class:`~repro.daemon.admission
   .AdmissionController` ladder *before* being decoded.  While a frame
   waits on rung 0, or after it is shed on rung 1, the session
   coroutine is not reading its socket — the kernel's TCP window fills
   and the client's ``sendall`` blocks.
2. Admitted bytes are released only after the traces they carried have
   been *checked*: sessions run an intermediate (cumulative, verdict
   -neutral) drain whenever ``checkpoint_bytes`` accumulate or the
   pool's backlog exceeds ``max_backlog`` traces.  Slow checking
   therefore throttles admission globally.
3. Blocking pool calls (submit batches, drains, close) run in the
   default executor so one stalled session never blocks the loop.

Graceful drain: ``shutdown()`` (also wired to SIGTERM/SIGINT by
``install_signal_handlers``) stops accepting, lets live sessions finish
and be answered, then flushes metrics.  Chaos fault points
``daemon.accept``, ``daemon.session_decode`` and ``daemon.shed`` let
the test suite kill sessions mid-stream and force sheds
deterministically.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import threading
from itertools import count
from time import perf_counter_ns
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.faults import (
    DEFAULT_RESILIENCE,
    FaultKind,
    FaultPlan,
    FaultPoint,
    Resilience,
)
from repro.core.metrics import MetricsRegistry, make_registry
from repro.core.recovery import RecoveryEvent
from repro.core.rules import PersistencyRules, X86Rules
from repro.core.traceio import (
    TraceDecodeError,
    _KIND_TRACES,
    decode_message,
    encode_error_message,
    encode_flight_message,
    encode_session_ack_message,
    encode_shed_message,
    encode_stats_message,
    encode_verdict_message,
    encode_welcome_message,
)
from repro.core.tracing import SpanContext, SpanHandle, Tracer
from repro.core.workers import WorkerPool
from repro.daemon.admission import AdmissionController, AdmissionPolicy
from repro.daemon.protocol import (
    DEFAULT_MAX_FRAME,
    ProtocolError,
    aread_frame,
    frame_bytes,
)
from repro.daemon.telemetry import (
    DEFAULT_FLIGHT_EVENTS,
    FlightRecorder,
    build_stats_payload,
    serve_http,
)

__all__ = ["CheckingServer", "ServerHandle", "start_in_thread"]


class _SessionAborted(Exception):
    """Internal: tear the session down without answering further."""


class _Session:
    """Per-session state the server tracks on the loop thread."""

    __slots__ = (
        "session_id", "tenant", "pool", "writer", "task",
        "accepted", "unreleased", "answered_drains", "span",
    )

    def __init__(
        self,
        session_id: int,
        tenant: str,
        pool: WorkerPool,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.session_id = session_id
        self.tenant = tenant
        self.pool = pool
        self.writer = writer
        self.task: Optional[asyncio.Task] = None
        self.accepted = 0       # traces admitted this session
        self.unreleased = 0     # admitted frame bytes not yet checked
        self.answered_drains = 0
        #: the server-side session span (a stackless handle: sessions
        #: interleave on the loop thread), parented under the client's
        #: hello span context when one rode in
        self.span: Optional[SpanHandle] = None


class CheckingServer:
    """The checking daemon.  Construct, ``await start()``, serve.

    ``rules_factory`` builds one fresh rules object per session (rules
    may carry per-run state, so sessions must not share one); all the
    checking knobs (``workers``/``backend``/``transport``/``engine``/
    ``shadow``/``shard_min_events``/``shard_plan``/``batch_size``/
    ``verdict_cache``) mirror
    :class:`~repro.core.workers.WorkerPool` and are applied to every
    session pool identically — that is what makes daemon verdicts
    library-identical.
    """

    def __init__(
        self,
        rules_factory: Optional[Callable[[], PersistencyRules]] = None,
        *,
        host: Optional[str] = None,
        port: int = 0,
        uds: Optional[str] = None,
        workers: int = 1,
        backend: Optional[str] = None,
        transport: Optional[str] = None,
        engine: Optional[str] = None,
        shadow: Optional[str] = None,
        shard_min_events: Optional[int] = None,
        shard_plan: Optional[str] = None,
        batch_size: Optional[int] = None,
        verdict_cache: Optional[bool] = None,
        policy: Optional[AdmissionPolicy] = None,
        resilience: Resilience = DEFAULT_RESILIENCE,
        faults: Optional[FaultPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
        handshake_timeout: float = 5.0,
        idle_timeout: float = 60.0,
        drain_timeout: float = 30.0,
        max_frame: int = DEFAULT_MAX_FRAME,
        max_backlog: int = 1024,
        tracer: Optional[Tracer] = None,
        http_host: Optional[str] = None,
        http_port: int = 0,
        flight_size: int = DEFAULT_FLIGHT_EVENTS,
        slow_frame_ms: float = 100.0,
        telemetry_interval_ms: int = 1000,
    ) -> None:
        if host is None and uds is None:
            raise ValueError("need a TCP host and/or a UDS path to listen on")
        self._rules_factory = rules_factory or X86Rules
        self._host = host
        self._port = port
        self._uds = uds
        self._workers = workers
        self._backend = backend
        self._transport = transport
        self._engine = engine
        self._shadow = shadow
        self._shard_min_events = shard_min_events
        self._shard_plan = shard_plan
        self._batch_size = batch_size
        self._verdict_cache = verdict_cache
        self._resilience = resilience
        self._faults = faults
        self.metrics = metrics if metrics is not None else make_registry()
        self._handshake_timeout = handshake_timeout
        self._idle_timeout = idle_timeout
        self._drain_timeout = drain_timeout
        self._max_frame = max_frame
        self._max_backlog = max_backlog
        self.admission = AdmissionController(
            policy, resilience, faults=faults, metrics=self.metrics
        )
        self._tracer = tracer
        self._http_host = http_host
        self._http_port = http_port
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._slow_frame_ns = int(slow_frame_ms * 1e6)
        #: floor for client-requested stats stream intervals
        self._telemetry_interval_ms = telemetry_interval_ms
        #: the flight recorder follows the metrics discipline — built
        #: only when a registry exists, so metrics-off keeps the frame
        #: path's telemetry at a single ``is None`` branch
        self.flight: Optional[FlightRecorder] = (
            FlightRecorder(flight_size) if self.metrics is not None else None
        )
        self.events: List[RecoveryEvent] = []
        self._sessions: Dict[int, _Session] = {}
        self._session_ids = count(1)
        self._listeners: List[asyncio.AbstractServer] = []
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        self._shutdown_task: Optional[asyncio.Task] = None
        # Lifetime counters independent of the metrics level.
        self.sessions_served = 0
        self.traces_accepted = 0
        self.sessions_aborted = 0
        #: cumulative traces accepted per tenant (plain counters; the
        #: stats payload's per-tenant ``traces`` column)
        self.tenant_traces: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the configured listeners; returns once accepting."""
        self._stopped = asyncio.Event()
        if self._host is not None:
            self._listeners.append(
                await asyncio.start_server(
                    self._handle, host=self._host, port=self._port
                )
            )
        if self._uds is not None:
            self._listeners.append(
                await asyncio.start_unix_server(self._handle, path=self._uds)
            )
        if self._http_host is not None:
            self._http_server = await serve_http(
                self, self._http_host, self._http_port
            )

    @property
    def http_address(self) -> Optional[Tuple[str, int]]:
        """The bound telemetry HTTP ``(host, port)``, if serving one."""
        if self._http_server is None:
            return None
        for sock in self._http_server.sockets or ():
            name = sock.getsockname()
            if isinstance(name, tuple):
                return (name[0], name[1])
        return None

    @property
    def tcp_address(self) -> Optional[Tuple[str, int]]:
        """The bound ``(host, port)``, once :meth:`start` has run."""
        for listener in self._listeners:
            for sock in listener.sockets or ():
                name = sock.getsockname()
                if isinstance(name, tuple):
                    return (name[0], name[1])
        return None

    @property
    def uds_path(self) -> Optional[str]:
        return self._uds

    @property
    def active_sessions(self) -> int:
        return len(self._sessions)

    @property
    def draining(self) -> bool:
        return self._draining

    def install_signal_handlers(
        self, loop: Optional[asyncio.AbstractEventLoop] = None
    ) -> None:
        """SIGTERM/SIGINT -> graceful ``shutdown()``."""
        loop = loop or asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, self._request_shutdown)

    def _request_shutdown(self) -> None:
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.ensure_future(self.shutdown())

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes."""
        assert self._stopped is not None, "call start() first"
        await self._stopped.wait()

    async def shutdown(self, drain: bool = True) -> None:
        """Graceful drain: stop accepting, answer live sessions, flush.

        With ``drain`` (the default, and what SIGTERM triggers), live
        sessions keep being served until they finish or
        ``drain_timeout`` passes; without it they are cancelled
        immediately.  Idempotent.
        """
        if self._draining:
            if self._stopped is not None:
                await self._stopped.wait()
            return
        self._draining = True
        if self._http_server is not None:
            self._http_server.close()
            with contextlib.suppress(Exception):
                await self._http_server.wait_closed()
        for listener in self._listeners:
            listener.close()
        for listener in self._listeners:
            with contextlib.suppress(Exception):
                await listener.wait_closed()
        tasks = [
            session.task
            for session in list(self._sessions.values())
            if session.task is not None
        ]
        if tasks:
            if drain:
                done, pending = await asyncio.wait(
                    tasks, timeout=self._drain_timeout
                )
            else:
                pending = set(tasks)
            for task in pending:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
        if self._uds is not None:
            with contextlib.suppress(OSError):
                os.unlink(self._uds)
        if self._stopped is not None:
            self._stopped.set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def recovery_events(self) -> List[RecoveryEvent]:
        """Server-level plus admission-ladder recovery records."""
        return list(self.events) + list(self.admission.events)

    def metrics_snapshot(self) -> Optional[MetricsRegistry]:
        """A merged copy of the server registry (``None`` if metrics off)."""
        return self.metrics.snapshot() if self.metrics is not None else None

    # ------------------------------------------------------------------
    # Session plumbing
    # ------------------------------------------------------------------
    def _make_pool(
        self, span_context: Optional[SpanContext] = None
    ) -> WorkerPool:
        level = self.metrics.level if self.metrics is not None else None
        pool_metrics = MetricsRegistry(level) if level is not None else None
        return WorkerPool(
            self._rules_factory(),
            num_workers=self._workers,
            backend=self._backend,
            batch_size=self._batch_size,
            transport=self._transport,
            engine=self._engine,
            shadow=self._shadow,
            shard_min_events=self._shard_min_events,
            shard_plan=self._shard_plan,
            verdict_cache=self._verdict_cache,
            check_timeout=self._resilience.check_timeout,
            max_retries=self._resilience.max_retries,
            fallback=self._resilience.fallback,
            metrics=pool_metrics,
            tracer=self._tracer,
            span_context=span_context,
        )

    async def _send(
        self, writer: asyncio.StreamWriter, payload: bytes
    ) -> None:
        writer.write(frame_bytes(payload))
        await writer.drain()

    async def _send_error(
        self, writer: asyncio.StreamWriter, message: str
    ) -> None:
        with contextlib.suppress(Exception):
            await self._send(writer, encode_error_message(message))

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session: Optional[_Session] = None
        try:
            if self._faults is not None:
                rule = self._faults.fire(FaultPoint.DAEMON_ACCEPT)
                if rule is not None:
                    if self.flight is not None:
                        self.flight.record(
                            "chaos", point="daemon.accept",
                            fault=rule.kind.name,
                        )
                    if rule.kind in (FaultKind.SLOW, FaultKind.STALL):
                        await asyncio.sleep(rule.delay)
                    elif rule.kind is FaultKind.FAIL:
                        await self._send_error(
                            writer, "chaos: accept failure injected"
                        )
                        return
                    elif rule.kind is FaultKind.CRASH:
                        return  # connection dropped without a word
            if self._draining:
                await self._send_error(
                    writer, "server is draining; not accepting sessions"
                )
                return
            try:
                frame = await asyncio.wait_for(
                    aread_frame(reader, self._max_frame),
                    self._handshake_timeout,
                )
            except (asyncio.TimeoutError, ProtocolError):
                await self._send_error(writer, "handshake timeout")
                return
            if frame is None:
                return
            try:
                message = decode_message(frame)
            except TraceDecodeError as exc:
                await self._send_error(writer, f"bad handshake frame: {exc}")
                return
            if message[0] != "hello":
                await self._send_error(
                    writer, f"expected hello, got {message[0]!r}"
                )
                return
            tenant = message[1]
            client_span = message[3] if len(message) > 3 else None
            reason = self.admission.admit_session(tenant)
            if reason is not None:
                if self.flight is not None:
                    self.flight.record(
                        "session_rejected", tenant=tenant, reason=reason
                    )
                await self._send_error(writer, f"session rejected: {reason}")
                return
            session_id = next(self._session_ids)
            session_span: Optional[SpanHandle] = None
            if self._tracer is not None:
                # Parent under the client's hello span when it shipped
                # one — this is the cross-process link that makes the
                # merged chrome://tracing export one tree.
                session_span = self._tracer.start_span(
                    "daemon.session", parent=client_span,
                    session=session_id, tenant=tenant,
                )
            session = _Session(
                session_id,
                tenant,
                self._make_pool(
                    session_span.context if session_span is not None else None
                ),
                writer,
            )
            session.span = session_span
            session.task = asyncio.current_task()
            self._sessions[session.session_id] = session
            self.admission.session_opened(session.session_id)
            self.sessions_served += 1
            if self.flight is not None:
                self.flight.record(
                    "session_opened", session=session.session_id,
                    tenant=tenant,
                )
            if self.metrics is not None:
                self.metrics.counter("daemon.sessions").inc(1)
            await self._send(
                writer,
                encode_welcome_message(session.session_id, self._max_frame),
            )
            await self._session_loop(session, reader, writer)
        except _SessionAborted as exc:
            self.sessions_aborted += 1
            if session is not None:
                self.events.append(
                    RecoveryEvent.session_aborted(
                        session.session_id,
                        session.tenant,
                        str(exc),
                        session.unreleased,
                    )
                )
                if self.flight is not None:
                    self.flight.record(
                        "session_aborted", session=session.session_id,
                        tenant=session.tenant, reason=str(exc),
                    )
            if self.metrics is not None:
                self.metrics.counter("daemon.sessions_aborted").inc(1)
            with contextlib.suppress(Exception):
                writer.transport.abort()
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # never let one session kill the server
            self.sessions_aborted += 1
            if session is not None:
                self.events.append(
                    RecoveryEvent.session_aborted(
                        session.session_id,
                        session.tenant,
                        repr(exc),
                        session.unreleased,
                    )
                )
        finally:
            if session is not None:
                await self._close_session(session)
            with contextlib.suppress(Exception):
                writer.close()

    async def _close_session(self, session: _Session) -> None:
        """Release budget, fold metrics, stop the session's pool."""
        self.admission.release(session.unreleased)
        session.unreleased = 0
        self.admission.session_closed(session.session_id)
        self._sessions.pop(session.session_id, None)
        loop = asyncio.get_running_loop()
        snapshot = None
        try:
            await loop.run_in_executor(None, session.pool.close)
            snapshot = session.pool.metrics_snapshot()
        except Exception:
            pass  # a dying pool must not take the session cleanup down
        if self.metrics is not None and snapshot is not None:
            self.metrics.merge(snapshot)
        if session.span is not None:
            session.span.finish(
                traces=session.accepted, drains=session.answered_drains
            )
        if self.flight is not None:
            self.flight.record(
                "session_closed", session=session.session_id,
                tenant=session.tenant, traces=session.accepted,
            )

    async def _session_loop(
        self,
        session: _Session,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        loop = asyncio.get_running_loop()
        timed = self.metrics is not None and self.metrics.full
        watched = timed or self.flight is not None
        while True:
            try:
                frame = await asyncio.wait_for(
                    aread_frame(reader, self._max_frame), self._idle_timeout
                )
            except asyncio.TimeoutError:
                await self._send_error(
                    writer,
                    f"idle timeout after {self._idle_timeout:g}s",
                )
                raise _SessionAborted("idle timeout") from None
            except ProtocolError as exc:
                raise _SessionAborted(f"protocol error: {exc}") from None
            if frame is None:
                return  # clean EOF
            started = perf_counter_ns() if watched else 0
            if self._faults is not None:
                rule = self._faults.fire(FaultPoint.DAEMON_SESSION_DECODE)
                if rule is not None:
                    if self.flight is not None:
                        self.flight.record(
                            "chaos", point="daemon.session_decode",
                            fault=rule.kind.name,
                            session=session.session_id,
                        )
                    if rule.kind in (FaultKind.SLOW, FaultKind.STALL):
                        await asyncio.sleep(rule.delay)
                    elif rule.kind is FaultKind.CRASH:
                        raise _SessionAborted(
                            "chaos: session killed mid-stream"
                        )
                    elif rule.kind in (FaultKind.CORRUPT, FaultKind.FAIL):
                        await self._send_error(
                            writer, "chaos: session frame corrupted"
                        )
                        raise _SessionAborted("chaos: frame corrupted")
            if len(frame) >= 6 and frame[5] == _KIND_TRACES:
                await self._handle_traces(session, writer, frame, loop)
            else:
                try:
                    message = decode_message(frame)
                except TraceDecodeError as exc:
                    await self._send_error(writer, f"bad frame: {exc}")
                    raise _SessionAborted(f"bad frame: {exc}") from None
                kind = message[0]
                if kind == "drain":
                    await self._handle_drain(
                        session, writer, loop,
                        message[1] if len(message) > 1 else None,
                    )
                elif kind == "stats_sub":
                    await self._handle_stats(session, writer, message[1])
                elif kind == "flight_req":
                    await self._send(
                        writer,
                        encode_flight_message(
                            self.flight.events()
                            if self.flight is not None else []
                        ),
                    )
                elif kind == "bye":
                    return
                else:
                    await self._send_error(
                        writer, f"unexpected {kind!r} frame from client"
                    )
                    raise _SessionAborted(f"unexpected {kind!r} frame")
            if watched:
                elapsed = perf_counter_ns() - started
                if timed:
                    self.metrics.histogram("daemon.frame_ns").record(elapsed)
                    self.metrics.histogram(
                        f"daemon.tenant.{session.tenant}.frame_ns"
                    ).record(elapsed)
                if (
                    self.flight is not None
                    and elapsed > self._slow_frame_ns
                ):
                    self.flight.record(
                        "slow_frame", session=session.session_id,
                        tenant=session.tenant, bytes=len(frame),
                        elapsed_ms=elapsed // 1_000_000,
                    )

    async def _handle_traces(
        self,
        session: _Session,
        writer: asyncio.StreamWriter,
        frame: bytes,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        nbytes = len(frame)
        budget = self.admission.budget
        if session.unreleased and budget.used + nbytes > budget.limit:
            # Rung 0 from the server's side: this session holds bytes it
            # can free itself, so catch the pool up (not reading the
            # socket meanwhile — that is the backpressure) instead of
            # shedding a frame the client would only have to resend.
            await asyncio.get_running_loop().run_in_executor(
                None, session.pool.drain
            )
            self.admission.release(session.unreleased)
            session.unreleased = 0
        decision = await self.admission.admit_frame(
            session.session_id, session.tenant, nbytes
        )
        if decision.action == "shed":
            if self.flight is not None:
                self.flight.record(
                    "shed", session=session.session_id,
                    tenant=session.tenant, bytes=nbytes,
                    retry_after_ms=decision.retry_after_ms,
                    reason=decision.reason,
                )
            await self._send(
                writer,
                encode_shed_message(decision.retry_after_ms, decision.reason),
            )
            return
        if decision.action == "reject":
            if self.flight is not None:
                self.flight.record(
                    "session_rejected", session=session.session_id,
                    tenant=session.tenant, reason=decision.reason,
                )
            await self._send_error(
                writer, f"session rejected: {decision.reason}"
            )
            raise _SessionAborted(decision.reason)
        try:
            traces = decode_message(frame)[1]
        except TraceDecodeError as exc:
            self.admission.release(nbytes)
            await self._send_error(
                writer,
                f"bad trace frame in session {session.session_id}: {exc}",
            )
            raise _SessionAborted(f"bad trace frame: {exc}") from None
        pool = session.pool

        def _submit_all() -> None:
            for trace in traces:
                pool.submit(trace)

        await loop.run_in_executor(None, _submit_all)
        session.accepted += len(traces)
        session.unreleased += nbytes
        self.traces_accepted += len(traces)
        self.tenant_traces[session.tenant] = (
            self.tenant_traces.get(session.tenant, 0) + len(traces)
        )
        if self.metrics is not None:
            self.metrics.counter("daemon.traces").inc(len(traces))
        policy = self.admission.policy
        if (
            session.unreleased >= policy.checkpoint_bytes
            or pool.backlog() > self._max_backlog
        ):
            # Checkpoint: wait for the pool to catch up, then hand the
            # session's inflight bytes back.  drain() is cumulative, so
            # any number of checkpoints leaves the final verdict
            # byte-identical.
            await loop.run_in_executor(None, pool.drain)
            self.admission.release(session.unreleased)
            session.unreleased = 0
        await self._send(
            writer, encode_session_ack_message(session.accepted)
        )

    async def _handle_drain(
        self,
        session: _Session,
        writer: asyncio.StreamWriter,
        loop: asyncio.AbstractEventLoop,
        client_span: Optional[SpanContext] = None,
    ) -> None:
        drain_span: Optional[SpanHandle] = None
        if self._tracer is not None:
            parent = client_span if client_span is not None else (
                session.span.context if session.span is not None else None
            )
            drain_span = self._tracer.start_span(
                "daemon.drain", parent=parent, session=session.session_id
            )
        result = await loop.run_in_executor(None, session.pool.drain)
        if drain_span is not None:
            drain_span.finish(traces=result.traces_checked)
        self.admission.release(session.unreleased)
        session.unreleased = 0
        session.answered_drains += 1
        if self.metrics is not None:
            self.metrics.counter("daemon.drains").inc(1)
        # The verdict trailer carries the server drain span's context
        # (so the client's trace links to the server timeline) and a
        # *cumulative* snapshot of the session pool's registry — the
        # client replaces, not merges, so checkpointed drains never
        # double-count.
        registry = (
            session.pool.metrics_snapshot()
            if self.metrics is not None else None
        )
        await self._send(
            writer,
            encode_verdict_message(
                result,
                result.diagnostics,
                span=(
                    drain_span.context if drain_span is not None else None
                ),
                registry=registry,
            ),
        )

    async def _handle_stats(
        self,
        session: _Session,
        writer: asyncio.StreamWriter,
        interval_ms: int,
    ) -> None:
        """Answer a ``stats_sub``: one snapshot, or a stream.

        ``interval_ms <= 0`` means a single snapshot and back to the
        frame loop.  A positive interval (floored by the server's
        ``telemetry_interval_ms``) turns this session into a stats
        stream until the client disconnects or the server drains — a
        subscriber going away is a normal ending, not an abort.
        """
        try:
            await self._send(
                writer, encode_stats_message(build_stats_payload(self))
            )
            if interval_ms <= 0:
                return
            interval = max(interval_ms, self._telemetry_interval_ms) / 1000.0
            while not self._draining:
                # Chunked sleep: stay responsive to shutdown without
                # waking subscribers early.
                remaining = interval
                while remaining > 0 and not self._draining:
                    await asyncio.sleep(min(remaining, 0.2))
                    remaining -= 0.2
                if self._draining:
                    return
                await self._send(
                    writer, encode_stats_message(build_stats_payload(self))
                )
        except (ConnectionError, OSError):
            return  # subscriber went away: EOF will end the session


# ----------------------------------------------------------------------
# Thread-hosted server (tests, benchmarks, embedding)
# ----------------------------------------------------------------------
class ServerHandle:
    """A :class:`CheckingServer` running on its own event-loop thread."""

    def __init__(
        self,
        server: CheckingServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def tcp_address(self) -> Optional[Tuple[str, int]]:
        return self.server.tcp_address

    @property
    def uds_path(self) -> Optional[str]:
        return self.server.uds_path

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Gracefully shut down and join the loop thread.  Idempotent."""
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain=drain), self._loop
        )
        try:
            future.result(timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def start_in_thread(**kwargs) -> ServerHandle:
    """Start a :class:`CheckingServer` on a dedicated daemon thread.

    Accepts the :class:`CheckingServer` constructor arguments; returns
    once the listeners are bound, so ``handle.tcp_address`` /
    ``handle.uds_path`` are immediately connectable.
    """
    started = threading.Event()
    holder: Dict[str, object] = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            server = CheckingServer(**kwargs)
            loop.run_until_complete(server.start())
        except BaseException as exc:  # surface to the caller
            holder["error"] = exc
            started.set()
            loop.close()
            return
        holder["server"] = server
        holder["loop"] = loop
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(
        target=run, name="pmtest-daemon", daemon=True
    )
    thread.start()
    if not started.wait(30.0):
        raise RuntimeError("daemon thread failed to start in 30s")
    error = holder.get("error")
    if error is not None:
        raise error  # type: ignore[misc]
    return ServerHandle(
        holder["server"], holder["loop"], thread  # type: ignore[arg-type]
    )
