"""Tests for the kernel FIFO channel (paper Section 4.5)."""

import threading
import time

import pytest

from repro.core.kfifo import FifoClosed, KernelFifo


class TestBasics:
    def test_fifo_order(self):
        fifo: KernelFifo[int] = KernelFifo(capacity=8)
        for i in range(5):
            fifo.put(i)
        assert [fifo.get() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_len(self):
        fifo: KernelFifo[int] = KernelFifo(capacity=8)
        fifo.put(1)
        fifo.put(2)
        assert len(fifo) == 2

    def test_get_timeout(self):
        fifo: KernelFifo[int] = KernelFifo(capacity=8)
        with pytest.raises(TimeoutError):
            fifo.get(timeout=0.01)

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            KernelFifo(capacity=1)


class TestBackpressure:
    def test_producer_blocks_when_full_and_wakes_below_half(self):
        fifo: KernelFifo[int] = KernelFifo(capacity=4)
        for i in range(4):
            fifo.put(i)
        produced = threading.Event()

        def producer():
            fifo.put(99)  # must block: fifo full
            produced.set()

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not produced.is_set()
        # Draining one item (3 left, >= capacity//2 == 2) must NOT wake it.
        fifo.get()
        time.sleep(0.05)
        assert not produced.is_set()
        # Draining below half capacity wakes the producer (hysteresis).
        fifo.get()
        fifo.get()
        t.join(timeout=1)
        assert produced.is_set()
        assert fifo.producer_waits == 1

    def test_no_wait_when_not_full(self):
        fifo: KernelFifo[int] = KernelFifo(capacity=4)
        fifo.put(1)
        assert fifo.producer_waits == 0


class TestClose:
    def test_close_wakes_blocked_consumer(self):
        fifo: KernelFifo[int] = KernelFifo(capacity=4)
        raised = threading.Event()

        def consumer():
            try:
                fifo.get()
            except FifoClosed:
                raised.set()

        t = threading.Thread(target=consumer, daemon=True)
        t.start()
        time.sleep(0.02)
        fifo.close()
        t.join(timeout=1)
        assert raised.is_set()

    def test_put_on_closed_raises(self):
        fifo: KernelFifo[int] = KernelFifo(capacity=4)
        fifo.close()
        with pytest.raises(FifoClosed):
            fifo.put(1)

    def test_get_drains_before_raising(self):
        fifo: KernelFifo[int] = KernelFifo(capacity=4)
        fifo.put(1)
        fifo.close()
        assert fifo.get() == 1
        with pytest.raises(FifoClosed):
            fifo.get()
