"""Tests for cacheline geometry helpers."""

import pytest

from repro.pmem.layout import (
    CACHELINE,
    line_base,
    line_index,
    line_span,
    split_by_line,
)


class TestLineMath:
    def test_line_index(self):
        assert line_index(0) == 0
        assert line_index(63) == 0
        assert line_index(64) == 1

    def test_line_base(self):
        assert line_base(0) == 0
        assert line_base(100) == 64

    def test_line_span_single(self):
        assert list(line_span(0, 64)) == [0]
        assert list(line_span(10, 8)) == [0]

    def test_line_span_straddle(self):
        assert list(line_span(60, 8)) == [0, 1]
        assert list(line_span(0, 65)) == [0, 1]
        assert list(line_span(0, 64 * 3)) == [0, 1, 2]

    def test_line_span_rejects_empty(self):
        with pytest.raises(ValueError):
            line_span(0, 0)

    def test_split_by_line_exact(self):
        assert list(split_by_line(0, 64)) == [(0, 0, 64)]

    def test_split_by_line_straddle(self):
        assert list(split_by_line(60, 8)) == [(0, 60, 4), (1, 64, 4)]

    def test_split_covers_whole_range(self):
        for addr, size in [(0, 1), (63, 2), (5, 200), (64, 64)]:
            frags = list(split_by_line(addr, size))
            assert sum(s for _, _, s in frags) == size
            assert frags[0][1] == addr
            for (_, a1, s1), (_, a2, _) in zip(frags, frags[1:]):
                assert a1 + s1 == a2
                assert a2 % CACHELINE == 0
