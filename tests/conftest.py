"""Shared fixtures for the PMTest reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.api import PMTestSession
from repro.core.rules import HOPSRules, X86Rules
from repro.instr.runtime import PMRuntime
from repro.pmem.machine import PMMachine


@pytest.fixture
def session() -> PMTestSession:
    """A synchronous x86 session, started and ready to record."""
    s = PMTestSession(workers=0)
    s.thread_init()
    s.start()
    return s


@pytest.fixture
def hops_session() -> PMTestSession:
    """A synchronous HOPS session, started and ready to record."""
    s = PMTestSession(rules=HOPSRules(), workers=0)
    s.thread_init()
    s.start()
    return s


@pytest.fixture
def machine() -> PMMachine:
    """A small x86 PM machine."""
    return PMMachine(64 * 1024)


@pytest.fixture
def runtime(machine: PMMachine, session: PMTestSession) -> PMRuntime:
    """A runtime driving the machine with PMTest attached."""
    return PMRuntime(machine=machine, session=session)
