"""Load generators modelled on the paper's clients (Table 4).

Each generator yields plain op tuples so the same stream can drive an
instrumented run, an uninstrumented baseline run, and a pmemcheck run —
the three legs of every slowdown measurement.

KV ops: ``("set", key, value)`` / ``("get", key, None)`` /
``("delete", key, None)``.
FS ops: ``("create", name)``, ``("write", name, offset, data)``,
``("read", name, offset, length)``, ``("fsync", name)``,
``("delete", name)``.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

KVOp = Tuple[str, bytes, Optional[bytes]]


class ZipfSampler:
    """Zipfian key sampler (YCSB's request distribution).

    Precomputes the CDF for ``n`` ranks with exponent ``s`` and samples
    by bisection — O(log n) per draw, deterministic under a seeded RNG.
    """

    def __init__(self, n: int, s: float = 0.99) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        weights = [1.0 / (rank**s) for rank in range(1, n + 1)]
        total = sum(weights)
        self.cdf: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self.cdf.append(acc)
        self.cdf[-1] = 1.0

    def sample(self, rng: random.Random) -> int:
        """Draw a rank in ``[0, n)`` (0 is the hottest key)."""
        from bisect import bisect_left

        return bisect_left(self.cdf, rng.random())


def _value(rng: random.Random, size: int) -> bytes:
    return bytes(rng.getrandbits(8) for _ in range(min(size, 16))).ljust(
        size, b"\xab"
    )


def memslap_ops(
    n_ops: int,
    key_space: int = 1000,
    set_ratio: float = 0.05,
    value_size: int = 64,
    seed: int = 0,
) -> Iterator[KVOp]:
    """Memslap's default mix: mostly gets, ``set_ratio`` sets (paper:
    100k ops/client, 5% set), uniform keys."""
    rng = random.Random(seed)
    for _ in range(n_ops):
        key = f"memslap-{rng.randrange(key_space)}".encode()
        if rng.random() < set_ratio:
            yield ("set", key, _value(rng, value_size))
        else:
            yield ("get", key, None)


def ycsb_ops(
    n_ops: int,
    key_space: int = 1000,
    update_ratio: float = 0.5,
    value_size: int = 100,
    seed: int = 0,
    zipf_s: float = 0.99,
) -> Iterator[KVOp]:
    """YCSB workload A: 50% update / 50% read over a zipfian key
    distribution (paper: 100k ops/client, 50% update)."""
    rng = random.Random(seed)
    zipf = ZipfSampler(key_space, zipf_s)
    for _ in range(n_ops):
        key = f"user{zipf.sample(rng)}".encode()
        if rng.random() < update_ratio:
            yield ("set", key, _value(rng, value_size))
        else:
            yield ("get", key, None)


def redis_lru_ops(
    n_keys: int,
    value_size: int = 64,
    get_ratio: float = 0.3,
    seed: int = 0,
) -> Iterator[KVOp]:
    """redis-cli's LRU test shape: a stream of fresh inserts (forcing
    eviction once past the cap) interleaved with gets of recent keys."""
    rng = random.Random(seed)
    written = 0
    while written < n_keys:
        if written and rng.random() < get_ratio:
            recent = rng.randrange(max(1, written // 2), written + 1)
            yield ("get", f"lru:{recent - 1}".encode(), None)
        else:
            yield ("set", f"lru:{written}".encode(), _value(rng, value_size))
            written += 1


def filebench_ops(
    n_loops: int,
    n_files: int = 16,
    io_size: int = 256,
    seed: int = 0,
) -> Iterator[tuple]:
    """A Filebench fileserver-style mix: create/write/read/append/
    delete/stat over a working set of files."""
    rng = random.Random(seed)
    live: List[bytes] = []
    serial = 0
    for _ in range(n_loops):
        roll = rng.random()
        if not live or (roll < 0.25 and len(live) < n_files):
            name = f"fb{serial}".encode()
            serial += 1
            live.append(name)
            yield ("create", name)
            yield ("write", name, 0, bytes([serial % 256]) * io_size)
        elif roll < 0.55:
            name = rng.choice(live)
            yield ("write", name, 0, bytes([serial % 256]) * io_size)
            yield ("fsync", name)
        elif roll < 0.85:
            yield ("read", rng.choice(live), 0, io_size)
        else:
            name = live.pop(rng.randrange(len(live)))
            yield ("delete", name)


def oltp_ops(
    n_txns: int,
    table_rows: int = 32,
    row_size: int = 64,
    seed: int = 0,
) -> Iterator[tuple]:
    """An OLTP-complex-style load (paper: MySQL on PMFS): random row
    read-modify-writes against a table file, fsynced per transaction."""
    rng = random.Random(seed)
    yield ("create", b"oltp.tbl")
    yield ("write", b"oltp.tbl", 0, b"\0" * min(table_rows * row_size, 2048))
    for txn in range(n_txns):
        row = rng.randrange(table_rows)
        offset = (row * row_size) % 2048
        yield ("read", b"oltp.tbl", offset, row_size)
        yield ("write", b"oltp.tbl", offset, bytes([txn % 256]) * row_size)
        yield ("fsync", b"oltp.tbl")
