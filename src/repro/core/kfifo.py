"""Bounded kernel-FIFO channel for kernel-module integration.

PMFS-style kernel modules cannot run the checking engine in kernel space,
so PMTest passes traces to the user-space engine through a kernel FIFO
(``/proc/PMTest``) of 1024 entries, and parks the kernel module on an
interruptible wait queue when the FIFO fills, waking it once the FIFO is
less than half full (paper Section 4.5).

This module simulates that channel: a bounded deque with hysteresis-based
backpressure.  The producer (the simulated kernel module) blocks in
:meth:`KernelFifo.put` when full and is only released once the consumer
has drained the FIFO below half capacity — exactly the paper's wake-up
condition, which avoids thrashing at the full mark.

Hardening: both :meth:`KernelFifo.put` and :meth:`KernelFifo.get` accept
deadlines (a parked producer is a classic livelock source if the
consumer dies), :meth:`KernelFifo.close` promptly wakes parked producers
and consumers with :class:`FifoClosed`, and the producer path consults
the session's chaos plan at the ``kfifo.put`` fault point so producer
starvation is testable deterministically.

Storage is a hook: the base class keeps Python objects in a deque,
while :class:`ShmKernelFifo` keeps binary-encoded traces in a
shared-memory ring (:mod:`repro.core.shm_ring`) — the layout a real
``/proc/PMTest`` byte channel would have.  Park/wake hysteresis stays
entry-count based either way, but the ring variant additionally parks
producers when the ring lacks *byte* space for the next record.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from time import perf_counter_ns
from typing import Deque, Generic, Optional, TypeVar

from repro.core.faults import FaultPlan, FaultPoint
from repro.core.metrics import MetricsRegistry
from repro.core.shm_ring import ShmRing
from repro.core.traceio import decode_trace_binary, encode_trace_binary

T = TypeVar("T")

#: The paper's FIFO depth for /proc/PMTest.
DEFAULT_CAPACITY = 1024


class FifoClosed(Exception):
    """The channel was closed while an operation was blocked on it."""


class KernelFifo(Generic[T]):
    """Bounded FIFO with half-full wake-up hysteresis."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        faults: Optional[FaultPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 2:
            raise ValueError("capacity must be at least 2")
        self.capacity = capacity
        self._faults = faults
        # All recording happens under self._lock, so a registry shared
        # with other FIFO users is safe; the off path is one branch.
        self._metrics = metrics
        self._items: Deque[T] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._below_half = threading.Condition(self._lock)
        self._closed = False
        #: number of times a producer had to park (observability for tests
        #: and for the kernel-integration benchmark)
        self.producer_waits = 0

    def __len__(self) -> int:
        with self._lock:
            return self._store_len()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # ------------------------------------------------------------------
    # Storage hooks (caller holds the lock).  The base class keeps the
    # items themselves in a deque; ShmKernelFifo overrides these to keep
    # encoded bytes in a shared-memory ring.
    # ------------------------------------------------------------------
    def _store_len(self) -> int:
        return len(self._items)

    def _store_append(self, item: T) -> None:
        self._items.append(item)

    def _store_pop(self) -> T:
        return self._items.popleft()

    def _has_room(self, item: T) -> bool:
        """Whether ``item`` fits right now (entry count; subclasses may
        add byte-space constraints)."""
        return self._store_len() < self.capacity

    def _wake_ok(self, item: T) -> bool:
        """The parked producer's resume condition (hysteresis)."""
        return self._store_len() < self.capacity // 2 and self._has_room(item)

    # ------------------------------------------------------------------
    def put(self, item: T, timeout: Optional[float] = None) -> None:
        """Enqueue; block on the wait queue while the FIFO is full.

        A parked producer resumes only once the FIFO has drained below
        half capacity (the paper's interruptible wait queue behaviour).
        Raises :class:`FifoClosed` promptly if the channel is closed —
        including while parked — and :class:`TimeoutError` when a
        ``timeout`` deadline expires before space frees up.
        """
        if self._faults is not None:
            # Producer starvation / stall injection happens before the
            # lock: a starved kernel producer is slow, not deadlocked.
            self._faults.sleep_if_told(FaultPoint.KFIFO_PUT)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            metrics = self._metrics
            if not self._has_room(item):
                self.producer_waits += 1
                wait_start = 0
                if metrics is not None:
                    metrics.counter("kfifo.producer_waits").inc(1)
                    if metrics.full:
                        wait_start = perf_counter_ns()
                while not self._closed and not self._wake_ok(item):
                    if deadline is None:
                        self._below_half.wait()
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not self._below_half.wait(
                            timeout=remaining
                        ):
                            raise TimeoutError(
                                "kernel FIFO put timed out while parked"
                            )
                if wait_start:
                    metrics.histogram("kfifo.put_wait_ns").record(
                        perf_counter_ns() - wait_start
                    )
            if self._closed:
                raise FifoClosed("put on closed kernel FIFO")
            self._store_append(item)
            if metrics is not None:
                metrics.counter("kfifo.puts").inc(1)
                if metrics.full:
                    metrics.histogram("kfifo.occupancy").record(
                        self._store_len()
                    )
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> T:
        """Dequeue; block while empty.  Raises :class:`FifoClosed` when the
        channel is closed and drained."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while not self._store_len():
                if self._closed:
                    raise FifoClosed("kernel FIFO closed and empty")
                if deadline is None:
                    self._not_empty.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._not_empty.wait(
                        timeout=remaining
                    ):
                        raise TimeoutError("kernel FIFO get timed out")
            item = self._store_pop()
            if self._metrics is not None:
                self._metrics.counter("kfifo.gets").inc(1)
            if self._store_len() < self.capacity // 2:
                self._below_half.notify_all()
            return item

    def close(self) -> None:
        """Close the channel, waking all blocked producers and consumers.

        Parked producers raise :class:`FifoClosed` from ``put`` rather
        than staying blocked; consumers drain remaining items first and
        then raise from ``get``.
        """
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._below_half.notify_all()


class ShmKernelFifo(KernelFifo["Trace"]):
    """A :class:`KernelFifo` whose storage is a shared-memory byte ring.

    Traces cross the simulated kernel/user boundary as binary codec
    records (:mod:`repro.core.traceio`) in an
    :class:`~repro.core.shm_ring.ShmRing` — the layout a real
    ``/proc/PMTest`` byte channel would have — instead of as Python
    object references in a deque.  Entry-count hysteresis is unchanged;
    producers additionally park when the ring lacks byte space for the
    next record, and every ``get`` below half capacity wakes them
    (freed bytes and freed entries coincide).

    Synchronization stays on the base class's in-process condition
    variables: the bridge's "kernel" producer and user-space consumer
    are threads of one process, so only the *storage* needs the
    shared-memory discipline.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        faults: Optional[FaultPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
        ring_bytes: int = 1 << 20,
    ) -> None:
        super().__init__(capacity, faults=faults, metrics=metrics)
        self._ring = ShmRing(ring_bytes)
        self._count = 0

    # --- storage hooks (lock held) ------------------------------------
    def _store_len(self) -> int:
        return self._count

    def _store_append(self, item) -> None:
        payload = encode_trace_binary(item)
        if not self._ring.try_push(payload):
            # _has_room admitted us, so only a concurrent close or a
            # record larger than the whole ring can land here.
            raise FifoClosed(
                "kernel FIFO ring rejected a record "
                f"({len(payload)} bytes, {self._ring.free_bytes()} free)"
            )
        self._count += 1
        if self._metrics is not None and self._metrics.full:
            self._metrics.histogram("kfifo.ring_used").record(
                self._ring.used_bytes()
            )

    def _store_pop(self):
        payload = self._ring.try_pop()
        assert payload is not None, "pop with _store_len() == 0"
        self._count -= 1
        return decode_trace_binary(payload)

    def _has_room(self, item) -> bool:
        if self._count >= self.capacity:
            return False
        # 4-byte length frame per record (see shm_ring protocol).
        need = len(encode_trace_binary(item)) + 4
        if need > self._ring.capacity:
            # No amount of draining will ever fit it; fail fast rather
            # than parking the producer forever.
            raise ValueError(
                f"trace record of {need} bytes cannot fit the "
                f"{self._ring.capacity}-byte kernel FIFO ring"
            )
        return self._ring.free_bytes() >= need

    # --- lifecycle ----------------------------------------------------
    def release(self) -> None:
        """Detach from (and unlink) the backing shared-memory segment.

        Call after the consumer has drained; a closed-and-released FIFO
        raises :class:`FifoClosed` from both ends.  Idempotent.
        """
        self.close()
        self._ring.release()
