"""Typed recovery events must render the legacy strings byte for byte."""

from repro.core.recovery import RecoveryEvent, RecoveryKind, render_events


class TestRendering:
    def test_watchdog_redistribute(self):
        event = RecoveryEvent.watchdog_redistribute(timeout=2.5, requeued=3)
        assert event.kind is RecoveryKind.WATCHDOG_REDISTRIBUTE
        assert event.render() == (
            "watchdog: no checking progress for 2.5s; "
            "redistributed 3 outstanding trace(s)"
        )

    def test_watchdog_requeue_formats_timeout_compactly(self):
        event = RecoveryEvent.watchdog_requeue(timeout=30.0, requeued=1)
        # %g drops the trailing .0 exactly like the legacy f-string did
        assert event.render() == (
            "watchdog: no checking progress for 30s; "
            "requeued 1 outstanding trace(s)"
        )

    def test_respawn_thread(self):
        event = RecoveryEvent.respawn_thread(
            worker=2, requeued=4, retry=1, max_retries=2
        )
        assert event.worker == 2
        assert event.render() == (
            "respawned checking worker thread 2; requeued "
            "4 in-flight trace(s) (retry 1/2)"
        )

    def test_respawn_process(self):
        event = RecoveryEvent.respawn_process(
            worker=0,
            new_worker=3,
            exitcode=-9,
            requeued=7,
            retry=2,
            max_retries=2,
        )
        assert event.render() == (
            "respawned checking worker process 0 as 3 after exit code -9; "
            "requeued 7 trace(s) (retry 2/2)"
        )

    def test_spawn_fallback_captures_error_repr(self):
        error = OSError("no forks left")
        event = RecoveryEvent.spawn_fallback("process", error, "thread")
        assert event.data["error"] == repr(error)
        assert event.render() == (
            "backend 'process' unavailable at spawn "
            "(OSError('no forks left')); degraded to 'thread'"
        )

    def test_degraded_uses_error_str(self):
        error = RuntimeError("3 worker(s) died")
        event = RecoveryEvent.degraded(
            "thread", "inline", error, salvaged=5, resubmitted=2
        )
        assert event.render() == (
            "degraded checking backend 'thread' -> 'inline': "
            "3 worker(s) died; salvaged 5 result(s), resubmitting "
            "2 unchecked trace(s)"
        )


class TestEventStream:
    def test_render_events_preserves_order(self):
        events = [
            RecoveryEvent.watchdog_requeue(1.0, 2),
            RecoveryEvent.respawn_thread(0, 1, 1, 2),
        ]
        lines = render_events(events)
        assert lines == [e.render() for e in events]

    def test_events_are_frozen_records(self):
        event = RecoveryEvent.watchdog_requeue(1.0, 2)
        assert event.timestamp > 0
        try:
            event.kind = RecoveryKind.DEGRADED
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("RecoveryEvent should be immutable")
