"""Unit and property tests for the interval map (the "interval tree").

The property tests validate every operation against a naive
one-value-per-address dict model, which is the obviously-correct (but
O(size)) specification.
"""

from typing import Dict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval_map import IntervalMap, QueryStats


class TestBasics:
    def test_empty(self):
        m: IntervalMap[int] = IntervalMap()
        assert len(m) == 0
        assert not m
        assert m.get(0) is None
        assert m.overlaps(0, 10) == []
        assert m.gaps(0, 10) == [(0, 10)]
        assert not m.covers(0, 10)

    def test_single_assign(self):
        m: IntervalMap[str] = IntervalMap()
        m.assign(10, 20, "a")
        assert m.get(10) == "a"
        assert m.get(19) == "a"
        assert m.get(20) is None
        assert m.get(9) is None
        assert m.covers(10, 20)
        assert m.covers(12, 15)
        assert not m.covers(5, 15)

    def test_assign_overwrites_middle(self):
        m: IntervalMap[str] = IntervalMap()
        m.assign(0, 30, "a")
        m.assign(10, 20, "b")
        assert m.overlaps(0, 30, clip=False) == [
            (0, 10, "a"),
            (10, 20, "b"),
            (20, 30, "a"),
        ]

    def test_assign_spanning_many(self):
        m: IntervalMap[str] = IntervalMap()
        for i in range(5):
            m.assign(i * 10, i * 10 + 5, str(i))
        m.assign(3, 43, "x")
        assert m.overlaps(0, 50, clip=False) == [
            (0, 3, "0"),
            (3, 43, "x"),
            (43, 45, "4"),
        ]

    def test_erase_splits(self):
        m: IntervalMap[str] = IntervalMap()
        m.assign(0, 30, "a")
        m.erase(10, 20)
        assert m.gaps(0, 30) == [(10, 20)]
        assert m.total_span() == 20

    def test_update_splits_partials(self):
        m: IntervalMap[int] = IntervalMap()
        m.assign(0, 30, 1)
        m.update(10, 20, lambda lo, hi, v: v + 10)
        assert m.overlaps(0, 30, clip=False) == [
            (0, 10, 1),
            (10, 20, 11),
            (20, 30, 1),
        ]

    def test_update_skips_gaps(self):
        m: IntervalMap[int] = IntervalMap()
        m.assign(0, 5, 1)
        m.assign(15, 20, 2)
        m.update(0, 20, lambda lo, hi, v: -v)
        assert m.gaps(0, 20) == [(5, 15)]
        assert m.get(0) == -1
        assert m.get(15) == -2

    def test_clipping(self):
        m: IntervalMap[str] = IntervalMap()
        m.assign(0, 100, "a")
        assert m.overlaps(40, 60) == [(40, 60, "a")]
        assert m.overlaps(40, 60, clip=False) == [(0, 100, "a")]

    def test_coalesce(self):
        m: IntervalMap[bool] = IntervalMap()
        m.assign(0, 10, True)
        m.assign(10, 20, True)
        m.assign(30, 40, True)
        m.coalesce()
        assert list(m) == [(0, 20, True), (30, 40, True)]

    def test_invalid_range_rejected(self):
        m: IntervalMap[int] = IntervalMap()
        with pytest.raises(ValueError):
            m.assign(5, 5, 1)
        with pytest.raises(ValueError):
            m.overlaps(7, 3)

    def test_constructor_from_segments(self):
        m = IntervalMap([(0, 5, "a"), (5, 9, "b")])
        assert m.total_span() == 9

    def test_clear(self):
        m = IntervalMap([(0, 5, 1)])
        m.clear()
        assert len(m) == 0


# ----------------------------------------------------------------------
# Property tests against a naive per-address model
# ----------------------------------------------------------------------

_ADDR = st.integers(min_value=0, max_value=120)


@st.composite
def _ranges(draw):
    lo = draw(_ADDR)
    hi = draw(st.integers(min_value=lo + 1, max_value=128))
    return lo, hi


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("assign"), _ranges(), st.integers(0, 5)),
        st.tuples(st.just("erase"), _ranges(), st.just(0)),
        st.tuples(st.just("update"), _ranges(), st.integers(0, 5)),
    ),
    max_size=40,
)


def _apply_model(model: Dict[int, int], op, rng, value):
    lo, hi = rng
    if op == "assign":
        for a in range(lo, hi):
            model[a] = value
    elif op == "erase":
        for a in range(lo, hi):
            model.pop(a, None)
    else:  # update
        for a in range(lo, hi):
            if a in model:
                model[a] = model[a] + value


class TestIntervalMapProperties:
    @given(_OPS)
    @settings(max_examples=200, deadline=None)
    def test_matches_naive_model(self, ops):
        m: IntervalMap[int] = IntervalMap()
        model: Dict[int, int] = {}
        for op, rng, value in ops:
            lo, hi = rng
            if op == "assign":
                m.assign(lo, hi, value)
            elif op == "erase":
                m.erase(lo, hi)
            else:
                m.update(lo, hi, lambda s, e, v: v + value)
            _apply_model(model, op, rng, value)
            # Point queries agree everywhere.
            for a in range(0, 129):
                assert m.get(a) == model.get(a), f"mismatch at {a} after {op}"

    @given(_OPS, _ranges())
    @settings(max_examples=200, deadline=None)
    def test_gaps_and_overlaps_partition_queries(self, ops, query):
        m: IntervalMap[int] = IntervalMap()
        for op, rng, value in ops:
            lo, hi = rng
            if op == "assign":
                m.assign(lo, hi, value)
            elif op == "erase":
                m.erase(lo, hi)
            else:
                m.update(lo, hi, lambda s, e, v: v + value)
        lo, hi = query
        pieces = [(s, e) for s, e, _ in m.overlaps(lo, hi)] + m.gaps(lo, hi)
        pieces.sort()
        # The clipped overlaps plus the gaps exactly tile [lo, hi).
        cursor = lo
        for s, e in pieces:
            assert s == cursor
            assert e > s
            cursor = e
        assert cursor == hi

    @given(_OPS)
    @settings(max_examples=100, deadline=None)
    def test_segments_sorted_and_disjoint(self, ops):
        m: IntervalMap[int] = IntervalMap()
        for op, rng, value in ops:
            lo, hi = rng
            if op == "assign":
                m.assign(lo, hi, value)
            elif op == "erase":
                m.erase(lo, hi)
            else:
                m.update(lo, hi, lambda s, e, v: v + value)
        segments = list(m)
        for (s1, e1, _), (s2, e2, _) in zip(segments, segments[1:]):
            assert e1 <= s2
        for s, e, _ in segments:
            assert s < e


class TestOverlapsBounds:
    """Regression tests for the bounded overlaps/carve scan.

    ``overlaps`` used to slice ``self._segments[i0:]``, copying every
    segment from the first hit to the end of the map on every query —
    O(n) point queries over a large map.  The scan must stay
    proportional to the number of segments actually intersecting the
    query range.
    """

    @staticmethod
    def _dense_map(n: int) -> IntervalMap:
        m: IntervalMap[int] = IntervalMap()
        for i in range(n):
            m.assign(i * 10, i * 10 + 5, i)
        return m

    def test_query_boundaries(self):
        m = self._dense_map(100)
        # Exactly one segment, clipped both sides.
        assert m.overlaps(502, 504) == [(502, 504, 50)]
        # Query ending exactly at a segment start excludes it.
        assert m.overlaps(495, 500) == []
        # Query starting exactly at a segment end excludes it.
        assert m.overlaps(505, 510) == []
        # Query past the last segment.
        assert m.overlaps(10**6, 10**6 + 10) == []
        # Query covering everything returns everything.
        assert len(m.overlaps(0, 100 * 10)) == 100

    def test_unclipped_bounds(self):
        m = self._dense_map(100)
        assert m.overlaps(502, 513, clip=False) == [
            (500, 505, 50),
            (510, 515, 51),
        ]

    def test_scan_is_bounded_by_hits_not_map_size(self):
        """A 2-segment query over a 5000-segment map must not walk (or
        copy) the tail of the segment list."""

        class CountingList(list):
            touched = 0

            def __getitem__(self, key):
                out = super().__getitem__(key)
                if isinstance(key, slice):
                    CountingList.touched += len(out)
                else:
                    CountingList.touched += 1
                return out

        m = self._dense_map(5000)
        m._segments = CountingList(m._segments)
        CountingList.touched = 0
        hits = m.overlaps(100 * 10, 102 * 10)
        assert [value for _, _, value in hits] == [100, 101]
        assert CountingList.touched < 20, CountingList.touched
        # gaps() rides on overlaps and must stay bounded too.
        CountingList.touched = 0
        assert m.gaps(1005, 1010) == [(1005, 1010)]
        assert CountingList.touched < 20, CountingList.touched

    def test_covers_scan_is_bounded(self):
        """``covers`` must stop at the first hole instead of walking or
        allocating the full clipped gap list."""

        class CountingList(list):
            touched = 0

            def __getitem__(self, key):
                out = super().__getitem__(key)
                if isinstance(key, slice):
                    CountingList.touched += len(out)
                else:
                    CountingList.touched += 1
                return out

        m = self._dense_map(5000)
        m._segments = CountingList(m._segments)
        # The very first gap (at offset 5) disproves coverage; the 4999
        # later segments must not be touched.
        CountingList.touched = 0
        assert not m.covers(0, 5000 * 10)
        assert CountingList.touched < 20, CountingList.touched


class TestQueryStatsAccounting:
    def test_update_does_not_count_as_query(self):
        """Regression: ``update`` used to call ``overlaps`` internally,
        billing a mutation to the paper's query-depth metric."""
        m: IntervalMap[int] = IntervalMap()
        m.assign(0, 30, 1)
        m.stats = stats = QueryStats()
        m.update(5, 25, lambda lo, hi, v: v + 1)
        assert stats.queries == 0
        assert stats.scanned == 0
        # The mutation itself still happened.
        assert m.get(10) == 2

    def test_covers_counts_one_query(self):
        m: IntervalMap[int] = IntervalMap()
        m.assign(0, 10, 1)
        m.assign(10, 20, 2)
        m.stats = stats = QueryStats()
        assert m.covers(0, 20)
        assert stats.queries == 1
        assert stats.scanned == 2

    def test_overlaps_still_counts(self):
        m: IntervalMap[int] = IntervalMap()
        m.assign(0, 10, 1)
        m.stats = stats = QueryStats()
        m.overlaps(0, 10)
        assert stats.queries == 1
        assert stats.scanned == 1


class TestEdgeCases:
    """Boundary shapes the batched array store made load-bearing."""

    @given(st.integers(min_value=0, max_value=128))
    @settings(max_examples=50, deadline=None)
    def test_zero_length_ranges_rejected_everywhere(self, lo):
        m: IntervalMap[int] = IntervalMap()
        m.assign(0, 130, 1)
        for call in (
            lambda: m.assign(lo, lo, 2),
            lambda: m.erase(lo, lo),
            lambda: m.update(lo, lo, lambda s, e, v: v),
            lambda: m.overlaps(lo, lo),
            lambda: m.gaps(lo, lo),
            lambda: m.covers(lo, lo),
        ):
            with pytest.raises(ValueError, match="empty or inverted"):
                call()
        # The failed calls must not have perturbed the map.
        assert list(m) == [(0, 130, 1)]

    @given(_ranges(), _ranges())
    @settings(max_examples=200, deadline=None)
    def test_update_carves_both_boundaries(self, seg, cut):
        """update() of an interior range leaves prefix and suffix with
        the original value and hands the callback the *clipped* range."""
        (slo, shi), (clo, chi) = seg, cut
        m: IntervalMap[int] = IntervalMap()
        m.assign(slo, shi, 1)
        seen = []
        m.update(clo, chi, lambda s, e, v: seen.append((s, e, v)) or v + 10)
        model = {
            a: (11 if clo <= a < chi else 1) for a in range(slo, shi)
        }
        for a in range(0, 130):
            assert m.get(a) == model.get(a)
        for s, e, v in seen:
            assert max(slo, clo) <= s < e <= min(shi, chi)
            assert v == 1

    @given(_OPS)
    @settings(max_examples=200, deadline=None)
    def test_coalesce_merges_exactly_equal_adjacent(self, ops):
        m: IntervalMap[int] = IntervalMap()
        for op, rng, value in ops:
            lo, hi = rng
            if op == "assign":
                m.assign(lo, hi, value)
            elif op == "erase":
                m.erase(lo, hi)
            else:
                m.update(lo, hi, lambda s, e, v: v + value)
        model = {a: m.get(a) for a in range(0, 130) if m.get(a) is not None}
        m.coalesce()
        # Point-identical...
        for a in range(0, 130):
            assert m.get(a) == model.get(a)
        # ...and maximally merged: no two touching equal-valued runs.
        segments = list(m)
        for (s1, e1, v1), (s2, e2, v2) in zip(segments, segments[1:]):
            assert e1 < s2 or v1 != v2

    @given(_OPS, _ranges())
    @settings(max_examples=200, deadline=None)
    def test_gaps_at_query_edges(self, ops, query):
        """gaps() against the dict model, with the query edges landing
        on, inside, and outside segment boundaries."""
        m: IntervalMap[int] = IntervalMap()
        for op, rng, value in ops:
            lo, hi = rng
            if op == "assign":
                m.assign(lo, hi, value)
            elif op == "erase":
                m.erase(lo, hi)
            else:
                m.update(lo, hi, lambda s, e, v: v + value)
        lo, hi = query
        holes = {a for a in range(lo, hi) if m.get(a) is None}
        from_gaps = set()
        for s, e in m.gaps(lo, hi):
            assert lo <= s < e <= hi
            from_gaps.update(range(s, e))
        assert from_gaps == holes

    def test_gaps_edges_exact(self):
        m: IntervalMap[int] = IntervalMap()
        m.assign(10, 20, 1)
        assert m.gaps(0, 10) == [(0, 10)]    # query ends at segment start
        assert m.gaps(20, 30) == [(20, 30)]  # query starts at segment end
        assert m.gaps(10, 20) == []
        assert m.gaps(9, 21) == [(9, 10), (20, 21)]
        assert m.gaps(19, 20) == []


class TestCoversProperties:
    @given(_OPS, _ranges())
    @settings(max_examples=200, deadline=None)
    def test_covers_agrees_with_gaps(self, ops, query):
        m: IntervalMap[int] = IntervalMap()
        for op, rng, value in ops:
            lo, hi = rng
            if op == "assign":
                m.assign(lo, hi, value)
            elif op == "erase":
                m.erase(lo, hi)
            else:
                m.update(lo, hi, lambda s, e, v: v + value)
        lo, hi = query
        assert m.covers(lo, hi) == (not m.gaps(lo, hi))
