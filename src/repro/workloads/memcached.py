"""A Memcached-like key-value server on Mnemosyne (paper Table 4).

The server fronts a :class:`~repro.mnemosyne.pmap.MnemosyneMap` with the
Memcached command set relevant to the evaluation (set/get/delete) and a
global lock around persistent mutations — matching the paper's
observation that multithreaded PM transactions are independent because
"one thread writes back all its persistent data before releasing the
lock" (Section 7.4).

Server threads map onto the paper's "Memcached threads" axis in
Figure 12: each thread consumes one client's op stream, tracking its own
per-thread trace.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional

from repro.core.api import PMTestSession
from repro.mnemosyne.pmap import MnemosyneMap
from repro.pmdk.pool import PMPool
from repro.workloads.clients import KVOp


class MemcachedServer:
    """Minimal Memcached front-end over the Mnemosyne persistent map."""

    def __init__(self, pool: PMPool, root_slot: int = 0,
                 nbuckets: int = 256) -> None:
        self.map = MnemosyneMap(pool, root_slot=root_slot, nbuckets=nbuckets)
        self.lock = threading.Lock()
        self.stats = {"set": 0, "get": 0, "delete": 0, "hit": 0, "miss": 0}

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def set(self, key: bytes, value: bytes) -> None:
        with self.lock:
            self.map.set(key, value)
            self.stats["set"] += 1

    def get(self, key: bytes) -> Optional[bytes]:
        with self.lock:
            value = self.map.get(key)
            self.stats["get"] += 1
            self.stats["hit" if value is not None else "miss"] += 1
            return value

    def delete(self, key: bytes) -> bool:
        with self.lock:
            self.stats["delete"] += 1
            return self.map.delete(key)

    # ------------------------------------------------------------------
    def process(self, op: KVOp) -> Optional[bytes]:
        """Execute one client op tuple."""
        kind, key, value = op
        if kind == "set":
            self.set(key, value or b"")
            return None
        if kind == "get":
            return self.get(key)
        if kind == "delete":
            self.delete(key)
            return None
        raise ValueError(f"unknown memcached op {kind!r}")

    def serve(
        self,
        ops: Iterable[KVOp],
        session: Optional[PMTestSession] = None,
        trace_every: int = 1,
    ) -> int:
        """Process a client's op stream on the calling thread.

        ``trace_every`` batches that many ops per PMTest trace — the
        SEND_TRACE granularity knob of the trace-batching ablation.
        """
        processed = 0
        for op in ops:
            self.process(op)
            processed += 1
            if session is not None and processed % trace_every == 0:
                session.send_trace()
        if session is not None:
            session.send_trace()
        return processed
