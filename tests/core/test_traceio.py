"""Tests for trace serialization and offline re-checking."""

import io
import pickle

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.api import PMTestSession
from repro.core.engine import CheckingEngine
from repro.core.events import Event, Op, SourceSite, Trace
from repro.core.reports import Level, Report, ReportCode, TestResult
from repro.core.rules import HOPSRules
from repro.core.metrics import MetricsLevel, MetricsRegistry
from repro.core.traceio import (
    BINARY_MAGIC,
    TraceDecodeError,
    TraceFormatError,
    TraceRecorder,
    corrupt_wire,
    corrupt_wire_framed,
    decode_event,
    decode_message,
    decode_registry,
    decode_result,
    decode_trace,
    decode_trace_binary,
    decode_traces_binary,
    dump_traces,
    dump_traces_binary,
    encode_ack_message,
    encode_event,
    encode_registry,
    encode_result,
    encode_result_message,
    encode_task_message,
    encode_trace,
    encode_trace_binary,
    encode_traces_binary,
    load_traces,
    load_traces_auto,
    load_traces_binary,
)


def sample_traces():
    t0 = Trace(0, thread_name="main")
    t0.append(Event(Op.WRITE, 0x10, 64, site=SourceSite("app.c", 12, "f")))
    t0.append(Event(Op.CLWB, 0x10, 64))
    t0.append(Event(Op.SFENCE))
    t0.append(Event(Op.CHECK_ORDER, 0x10, 64, 0x50, 64))
    t1 = Trace(1, thread_name="worker")
    t1.append(Event(Op.CHECK_PERSIST, 0x10, 64))
    return [t0, t1]


class TestRoundTrip:
    def test_dump_and_load(self, tmp_path):
        path = tmp_path / "run.pmtrace"
        assert dump_traces(sample_traces(), path) == 2
        loaded = load_traces(path)
        assert len(loaded) == 2
        assert loaded[0].trace_id == 0
        assert loaded[0].thread_name == "main"
        assert loaded[1].thread_name == "worker"

    def test_events_preserved(self):
        buffer = io.StringIO()
        dump_traces(sample_traces(), buffer)
        buffer.seek(0)
        [t0, t1] = load_traces(buffer)
        assert [e.op for e in t0.events] == [
            Op.WRITE, Op.CLWB, Op.SFENCE, Op.CHECK_ORDER
        ]
        assert t0.events[0].addr == 0x10
        assert t0.events[0].site == SourceSite("app.c", 12, "f")
        assert t0.events[3].addr2 == 0x50
        assert t0.events[1].site is None

    def test_seq_reassigned_on_load(self):
        buffer = io.StringIO()
        dump_traces(sample_traces(), buffer)
        buffer.seek(0)
        [t0, _] = load_traces(buffer)
        assert [e.seq for e in t0.events] == [0, 1, 2, 3]

    def test_checking_verdict_identical_after_roundtrip(self):
        traces = sample_traces()
        engine = CheckingEngine()
        direct = engine.check_traces(traces)
        buffer = io.StringIO()
        dump_traces(sample_traces(), buffer)
        buffer.seek(0)
        replayed = engine.check_traces(load_traces(buffer))
        assert [r.code for r in direct.reports] == [
            r.code for r in replayed.reports
        ]

    def test_empty_dump(self, tmp_path):
        path = tmp_path / "empty.pmtrace"
        dump_traces([], path)
        assert load_traces(path) == []


class TestFormatErrors:
    def test_missing_header(self):
        with pytest.raises(TraceFormatError):
            load_traces(io.StringIO('{"trace": 0}\n'))

    def test_wrong_version(self):
        with pytest.raises(TraceFormatError):
            load_traces(
                io.StringIO('{"format": "pmtest-trace", "version": 99}\n')
            )

    def test_event_before_trace(self):
        data = (
            '{"format": "pmtest-trace", "version": 1}\n'
            '{"op": "WRITE", "addr": 0, "size": 8}\n'
        )
        with pytest.raises(TraceFormatError):
            load_traces(io.StringIO(data))

    def test_unknown_op(self):
        data = (
            '{"format": "pmtest-trace", "version": 1}\n'
            '{"trace": 0}\n'
            '{"op": "TELEPORT", "addr": 0, "size": 8}\n'
        )
        with pytest.raises(TraceFormatError):
            load_traces(io.StringIO(data))

    def test_bad_json(self):
        with pytest.raises(TraceFormatError):
            load_traces(io.StringIO("not json\n"))


class TestRecorderWorkflow:
    def test_record_then_check_offline(self, tmp_path):
        """The offline-analysis workflow: capture now, check later —
        under a different persistency model if desired."""
        recorder = TraceRecorder()
        session = PMTestSession(workers=0, sink=recorder)
        session.thread_init()
        session.start()
        session.write(0x10, 8)
        session.sfence()  # no flush: a durability bug under x86
        session.is_persist(0x10, 8)
        session.exit()

        path = tmp_path / "captured.pmtrace"
        dump_traces(recorder.traces, path)

        offline = CheckingEngine().check_traces(load_traces(path))
        assert offline.count(ReportCode.NOT_PERSISTED) == 1

    def test_recorder_checks_nothing(self):
        recorder = TraceRecorder()
        session = PMTestSession(workers=0, sink=recorder)
        session.thread_init()
        session.start()
        session.write(0, 8)
        result = session.exit()
        assert result.clean  # nothing checked, only recorded
        assert recorder.dispatched == 1

    def test_recheck_under_different_model_rejects_foreign_ops(self):
        """A trace recorded on x86 replayed under HOPS rules raises: the
        models speak different op vocabularies."""
        from repro.core.rules.base import UnsupportedOperation

        recorder = TraceRecorder()
        session = PMTestSession(workers=0, sink=recorder)
        session.thread_init()
        session.start()
        session.write(0, 8)
        session.clwb(0, 8)
        session.exit()
        with pytest.raises(UnsupportedOperation):
            CheckingEngine(HOPSRules()).check_traces(recorder.traces)


# ----------------------------------------------------------------------
# Compact wire encoding (the process backend's IPC format)
# ----------------------------------------------------------------------
_sites = st.one_of(
    st.none(),
    st.builds(
        SourceSite,
        file=st.text(min_size=1, max_size=20),
        line=st.integers(min_value=0, max_value=10**6),
        function=st.text(max_size=12),
    ),
)

_events = st.builds(
    Event,
    op=st.sampled_from(list(Op)),
    addr=st.integers(min_value=0, max_value=2**40),
    size=st.integers(min_value=0, max_value=2**20),
    addr2=st.integers(min_value=0, max_value=2**40),
    size2=st.integers(min_value=0, max_value=2**20),
    site=_sites,
    seq=st.integers(min_value=-1, max_value=10**6),
)

_traces = st.builds(
    lambda trace_id, thread_name, events: Trace(
        trace_id, events=events, thread_name=thread_name
    ),
    trace_id=st.integers(min_value=0, max_value=2**31),
    thread_name=st.text(min_size=1, max_size=16),
    events=st.lists(_events, max_size=12),
)

_reports = st.builds(
    Report,
    level=st.sampled_from(list(Level)),
    code=st.sampled_from(list(ReportCode)),
    message=st.text(max_size=40),
    site=_sites,
    related_site=_sites,
    trace_id=st.integers(min_value=-1, max_value=2**31),
    seq=st.integers(min_value=-1, max_value=10**6),
)

_results = st.builds(
    TestResult,
    reports=st.lists(_reports, max_size=8),
    traces_checked=st.integers(min_value=0, max_value=10**6),
    events_checked=st.integers(min_value=0, max_value=10**9),
    checkers_evaluated=st.integers(min_value=0, max_value=10**6),
)


class TestWireEncoding:
    """decode(encode(x)) == x, and the wire form survives pickling."""

    @settings(max_examples=150, deadline=None)
    @given(_events)
    def test_event_roundtrip(self, event):
        wire = encode_event(event)
        assert decode_event(pickle.loads(pickle.dumps(wire))) == event

    @settings(max_examples=100, deadline=None)
    @given(_traces)
    def test_trace_roundtrip(self, trace):
        wire = encode_trace(trace)
        decoded = decode_trace(pickle.loads(pickle.dumps(wire)))
        assert decoded == trace
        # Event seq is preserved verbatim, not renumbered.
        assert [e.seq for e in decoded.events] == [
            e.seq for e in trace.events
        ]

    @settings(max_examples=100, deadline=None)
    @given(_results)
    def test_result_roundtrip(self, result):
        wire = encode_result(result)
        assert decode_result(pickle.loads(pickle.dumps(wire))) == result

    def test_wire_form_is_flat(self):
        """The encoding must stay primitive tuples (cheap to pickle)."""
        trace = Trace(3)
        trace.append(Event(Op.WRITE, 0x10, 64, site=SourceSite("a.c", 1)))
        wire = encode_trace(trace)

        def flat(obj):
            if obj is None or isinstance(obj, (int, str)):
                return True
            return isinstance(obj, tuple) and all(flat(x) for x in obj)

        assert flat(wire)


# ----------------------------------------------------------------------
# Decode-side validation: garbage on the wire fails with a *typed* error
# ----------------------------------------------------------------------
_junk = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(),
        st.floats(allow_nan=False),
        st.text(max_size=8),
    ),
    lambda children: st.lists(children, max_size=7).map(tuple),
    max_leaves=15,
)


class TestDecodeValidation:
    """A corrupted wire message must raise TraceDecodeError — never an
    arbitrary exception from deep inside the decoder or the engine."""

    def test_truncated_event_tuple(self):
        wire = encode_event(Event(Op.WRITE, 0x10, 64))
        with pytest.raises(TraceDecodeError, match="7-tuple"):
            decode_event(wire[:4])

    def test_unknown_op_value(self):
        wire = list(encode_event(Event(Op.WRITE, 0x10, 64)))
        wire[0] = 10**9
        with pytest.raises(TraceDecodeError, match="unknown op"):
            decode_event(tuple(wire))

    def test_bool_is_not_an_int_field(self):
        wire = list(encode_event(Event(Op.WRITE, 0x10, 64)))
        wire[1] = True
        with pytest.raises(TraceDecodeError, match="addr"):
            decode_event(tuple(wire))

    def test_malformed_site(self):
        wire = list(encode_event(Event(Op.WRITE, 0x10, 64)))
        wire[5] = ("file.c",)  # site must be (file, line, function)
        with pytest.raises(TraceDecodeError, match="site"):
            decode_event(tuple(wire))

    def test_non_string_thread_name(self):
        with pytest.raises(TraceDecodeError, match="thread name"):
            decode_trace((0, 42, ()))

    def test_result_counter_type_checked(self):
        with pytest.raises(TraceDecodeError, match="traces_checked"):
            decode_result(((), "3", 0, 0))

    def test_corrupt_wire_is_deterministic_and_typed(self):
        trace = sample_traces()[0]
        wire = encode_trace(trace)
        corrupted = corrupt_wire(wire)
        assert corrupted == corrupt_wire(wire)  # deterministic mangling
        with pytest.raises(TraceDecodeError):
            decode_trace(corrupted)

    def test_corrupt_wire_on_empty_trace(self):
        corrupted = corrupt_wire(encode_trace(Trace(0)))
        with pytest.raises(TraceDecodeError):
            decode_trace(corrupted)

    @settings(max_examples=200, deadline=None)
    @given(_junk)
    def test_event_decoder_never_raises_untyped(self, junk):
        try:
            decode_event(junk)
        except TraceDecodeError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(_junk)
    def test_trace_decoder_never_raises_untyped(self, junk):
        try:
            decode_trace(junk)
        except TraceDecodeError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(_junk)
    def test_result_decoder_never_raises_untyped(self, junk):
        try:
            decode_result(junk)
        except TraceDecodeError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(_traces, st.integers(min_value=0, max_value=6))
    def test_truncating_any_event_is_detected(self, trace, arity):
        assume(trace.events)
        wire = encode_trace(trace)
        events = (wire[2][0][:arity],) + tuple(wire[2][1:])
        with pytest.raises(TraceDecodeError):
            decode_trace((wire[0], wire[1], events))


# ----------------------------------------------------------------------
# Binary codec (the zero-copy transport's wire and disk format)
# ----------------------------------------------------------------------
def _append_built(trace_id, thread_name, events):
    """A trace built through append(), i.e. with canonical seq numbers —
    the only kind the JSON-lines format can represent losslessly."""
    trace = Trace(trace_id, thread_name=thread_name)
    for event in events:
        trace.append(event)
    return trace


#: Events as the instrumentation API produces them: an address is only
#: meaningful with a size (the JSON-lines dump elides zero-size ranges).
_ranges = st.one_of(
    st.just((0, 0)),
    st.tuples(
        st.integers(min_value=0, max_value=2**40),
        st.integers(min_value=1, max_value=2**20),
    ),
)

_canonical_events = st.builds(
    lambda op, r1, r2, site: Event(op, r1[0], r1[1], r2[0], r2[1], site),
    op=st.sampled_from(list(Op)),
    r1=_ranges,
    r2=_ranges,
    site=_sites,
)

_canonical_traces = st.builds(
    _append_built,
    trace_id=st.integers(min_value=0, max_value=2**31),
    thread_name=st.text(min_size=1, max_size=16),
    events=st.lists(_canonical_events, max_size=12),
)


class TestBinaryRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(_traces)
    def test_single_trace(self, trace):
        decoded = decode_trace_binary(encode_trace_binary(trace))
        assert decoded == trace
        # seq survives verbatim, exactly like the tuple wire.
        assert [e.seq for e in decoded.events] == [
            e.seq for e in trace.events
        ]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(_traces, max_size=5))
    def test_trace_batch(self, traces):
        assert decode_traces_binary(encode_traces_binary(traces)) == traces

    def test_disk_roundtrip_and_sniffing(self, tmp_path):
        traces = sample_traces()
        bin_path = tmp_path / "run.pmtb"
        json_path = tmp_path / "run.pmtrace"
        dump_traces_binary(traces, bin_path)
        dump_traces(traces, json_path)
        assert bin_path.read_bytes()[:4] == BINARY_MAGIC
        assert load_traces_binary(bin_path) == traces
        # load_traces_auto dispatches on the magic, not the extension.
        assert load_traces_auto(bin_path) == load_traces_auto(json_path)

    def test_binary_dump_is_smaller_than_json(self, tmp_path):
        traces = sample_traces()
        bin_path = tmp_path / "run.pmtb"
        json_path = tmp_path / "run.pmtrace"
        dump_traces_binary(traces, bin_path)
        dump_traces(traces, json_path)
        assert bin_path.stat().st_size < json_path.stat().st_size

    @settings(max_examples=60, deadline=None)
    @given(st.lists(_canonical_traces, max_size=4))
    def test_differential_binary_vs_json_vs_memory(self, traces):
        """Satellite: both serializations agree with the in-memory form
        for any append-built trace (ops, sites, TX markers)."""
        binary = decode_traces_binary(encode_traces_binary(traces))
        buffer = io.StringIO()
        dump_traces(traces, buffer)
        buffer.seek(0)
        json_side = load_traces(buffer)
        assert binary == traces
        assert json_side == traces
        assert binary == json_side

    def test_golden_v1_file_decodes(self):
        """Cross-version safety net: a committed v1 binary dump must
        decode identically forever (version bumps add formats, they do
        not reinterpret old bytes)."""
        from pathlib import Path

        golden = Path(__file__).parent / "data" / "golden_v1.pmtb"
        assert load_traces_binary(golden) == sample_traces()


class TestBinaryMessages:
    def test_task_message_roundtrip(self):
        traces = sample_traces()
        batch = [(7, encode_trace(traces[0])), (9, encode_trace(traces[1]))]
        kind, pairs = decode_message(encode_task_message(batch))
        assert kind == "task"
        assert [seq for seq, _ in pairs] == [7, 9]
        assert [t for _, t in pairs] == traces

    def test_ack_message_roundtrip(self):
        assert decode_message(encode_ack_message(3, [5, 6, 11])) == (
            "ack", 3, [5, 6, 11]
        )

    def test_result_message_roundtrip(self):
        result = TestResult(traces_checked=2, events_checked=10)
        data = encode_result_message(
            1, [(4, result, None), (5, None, "boom")]
        )
        kind, worker, items, registry, spans = decode_message(data)
        assert (kind, worker) == ("res", 1)
        assert items[0] == (4, result, None)
        assert items[1] == (5, None, "boom")
        assert registry is None
        assert spans is None

    def test_result_message_carries_registry(self):
        registry = MetricsRegistry(MetricsLevel.FULL)
        registry.counter("engine.traces").inc(3)
        registry.histogram("engine.latency").record(17)
        data = encode_result_message(0, [], registry=registry)
        _, _, _, decoded, _ = decode_message(data)
        assert decoded.counter_value("engine.traces") == 3
        assert decoded.to_dict() == registry.to_dict()

    def test_poisoned_trace_is_isolated_in_batch(self):
        """corrupt_wire_framed's poison op fails only its own trace;
        neighbours in the same message decode fine."""
        traces = sample_traces()
        batch = [
            (0, corrupt_wire_framed(encode_trace(traces[0]))),
            (1, encode_trace(traces[1])),
        ]
        kind, pairs = decode_message(encode_task_message(batch))
        assert kind == "task"
        assert isinstance(pairs[0][1], TraceDecodeError)
        assert "TraceDecodeError" in repr(pairs[0][1])
        assert pairs[1][1] == traces[1]

    def test_poisoned_wire_also_fails_tuple_decode(self):
        """The stored tuple wire of a poisoned trace must fail
        decode_trace too, so the corrupted-in-transit diagnosis is
        transport-independent."""
        poisoned = corrupt_wire_framed(encode_trace(sample_traces()[0]))
        with pytest.raises(TraceDecodeError, match="unknown op"):
            decode_trace(poisoned)

    def test_corrupt_wire_framed_on_empty_trace(self):
        """Even an empty trace gets a poison event appended, so the
        corruption is never a silent no-op."""
        poisoned = corrupt_wire_framed(encode_trace(Trace(0)))
        with pytest.raises(TraceDecodeError):
            decode_trace(poisoned)
        _, pairs = decode_message(encode_task_message([(0, poisoned)]))
        assert isinstance(pairs[0][1], TraceDecodeError)

    def test_corrupt_wire_framed_is_deterministic(self):
        wire = encode_trace(sample_traces()[0])
        assert corrupt_wire_framed(wire) == corrupt_wire_framed(wire)


class TestBinaryCorruption:
    """Damaged binary wire fails with TraceDecodeError — never an
    IndexError/struct.error/UnicodeDecodeError from inside the reader."""

    def _payloads(self):
        traces = sample_traces()
        registry = MetricsRegistry(MetricsLevel.FULL)
        registry.counter("c").inc(2)
        registry.gauge("g").observe(5)
        registry.histogram("h").record(9)
        return [
            encode_traces_binary(traces),
            encode_task_message([(3, encode_trace(traces[0]))]),
            encode_ack_message(1, [2, 3]),
            encode_result_message(
                0,
                [(1, TestResult(traces_checked=1), None)],
                registry=registry,
            ),
        ]

    @settings(max_examples=120, deadline=None)
    @given(st.data())
    def test_truncation_is_typed(self, data):
        payload = data.draw(st.sampled_from(self._payloads()))
        cut = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
        try:
            decode_message(payload[:cut])
        except TraceDecodeError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(st.data())
    def test_byte_flips_are_typed(self, data):
        payload = bytearray(data.draw(st.sampled_from(self._payloads())))
        pos = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
        flip = data.draw(st.integers(min_value=1, max_value=255))
        payload[pos] ^= flip
        try:
            decode_message(bytes(payload))
        except TraceDecodeError:
            pass

    @settings(max_examples=150, deadline=None)
    @given(st.binary(max_size=60))
    def test_arbitrary_bytes_are_typed(self, blob):
        try:
            decode_message(blob)
        except TraceDecodeError:
            pass

    def test_bad_magic(self):
        with pytest.raises(TraceDecodeError, match="magic"):
            decode_message(b"NOPE" + b"\x01\x01\x00")

    def test_future_version_rejected(self):
        data = bytearray(encode_traces_binary([]))
        data[4] = 99
        with pytest.raises(TraceDecodeError, match="version"):
            decode_message(bytes(data))


class TestFileErrorContext:
    """Satellite: errors from on-disk PMTB files carry the source path
    and the byte offset where decoding stopped."""

    def _write(self, tmp_path, data: bytes):
        path = tmp_path / "run.pmtrace"
        path.write_bytes(data)
        return path

    def test_truncated_file_reports_path_and_offset(self, tmp_path):
        payload = dump_and_read(sample_traces())
        path = self._write(tmp_path, payload[: len(payload) - 5])
        with pytest.raises(TraceFormatError) as excinfo:
            load_traces_binary(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert "byte offset" in message
        assert excinfo.value.source == str(path)
        assert isinstance(excinfo.value.offset, int)
        assert 0 < excinfo.value.offset <= len(payload)

    def test_corrupt_header_reports_offset_zero_area(self, tmp_path):
        path = self._write(tmp_path, b"PMTB\x63junkjunk")
        with pytest.raises(TraceFormatError) as excinfo:
            load_traces_binary(path)
        assert str(path) in str(excinfo.value)
        assert excinfo.value.offset <= 6  # failed inside the header

    def test_lazy_auto_load_reports_path_on_iteration(self, tmp_path):
        payload = dump_and_read(sample_traces())
        path = self._write(tmp_path, payload[: len(payload) - 3])
        lazy = load_traces_auto(path)
        with pytest.raises(TraceFormatError) as excinfo:
            list(lazy)
        assert str(path) in str(excinfo.value)
        assert excinfo.value.source == str(path)
        assert excinfo.value.offset > 0

    def test_underlying_decode_error_carries_context_too(self, tmp_path):
        payload = dump_and_read(sample_traces())
        path = self._write(tmp_path, payload[:-4])
        with pytest.raises(TraceFormatError) as excinfo:
            load_traces_binary(path)
        cause = excinfo.value.__cause__
        assert isinstance(cause, TraceDecodeError)
        assert cause.source == str(path)
        assert cause.offset == excinfo.value.offset

    def test_in_memory_decode_keeps_legacy_message(self):
        # No file involved: the message must not grow a path/offset
        # prefix (wire-level callers match on the legacy text).
        payload = dump_and_read(sample_traces())
        with pytest.raises(TraceDecodeError):
            decode_message(payload[:10])


def dump_and_read(traces) -> bytes:
    return encode_traces_binary(traces)


class TestRegistryWireValidation:
    """Satellite: registry- and result-wire junk raises TraceDecodeError
    (not KeyError/IndexError), same as trace-wire."""

    @settings(max_examples=200, deadline=None)
    @given(_junk)
    def test_registry_decoder_never_raises_untyped(self, junk):
        try:
            decode_registry(junk)
        except TraceDecodeError:
            pass

    def test_unknown_metrics_level(self):
        wire = list(encode_registry(MetricsRegistry(MetricsLevel.BASIC)))
        wire[0] = "turbo"
        with pytest.raises(TraceDecodeError):
            decode_registry(tuple(wire))

    def test_short_registry_tuple(self):
        with pytest.raises(TraceDecodeError):
            decode_registry(("full",))

    @settings(max_examples=120, deadline=None)
    @given(_junk)
    def test_report_junk_inside_result_is_typed(self, junk):
        try:
            decode_result(((junk,), 0, 0, 0))
        except TraceDecodeError:
            pass
