"""Benchmark-suite configuration and figure reporting.

Each bench module stashes its mean runtimes in ``_harness.RESULTS``;
the terminal-summary hook below turns them into the paper-style derived
tables (slowdown ratios) so a benchmark run ends with the reproduced
figure/table rows, not just raw timings.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

# Make the bench helpers importable when pytest is run from the repo root.
sys.path.insert(0, str(Path(__file__).parent))

import pytest

from _harness import (  # noqa: E402
    DAEMON_LOAD,
    DECODE_REPLAY,
    ENGINE_BEST,
    METRICS,
    RESULTS,
    SHADOW_BEST,
    VERDICT_CACHE,
    WIRE_BYTES,
    ZEROCOPY,
    slowdown,
)


@pytest.fixture(scope="session")
def bench_rounds() -> int:
    """Rounds per benchmark: small, the suite covers many configs."""
    return 2


def _fmt(value) -> str:
    return f"{value:6.2f}x" if value is not None else "   n/a "


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not RESULTS:
        return
    tr = terminalreporter
    figures = sorted({figure for figure, _ in RESULTS})

    if "fig10a" in figures:
        tr.section("Figure 10a reproduction: microbench slowdown")
        tr.write_line(f"{'structure':16s} {'txsize':>7s} {'PMTest':>8s} "
                      f"{'Pmemcheck':>10s}")
        rows = sorted(
            {(cfg[0], cfg[1]) for fig, cfg in RESULTS if fig == "fig10a"}
        )
        for structure, size in rows:
            pmtest = slowdown("fig10a", (structure, size, "pmtest"),
                              (structure, size, "none"))
            pmc = slowdown("fig10a", (structure, size, "pmemcheck"),
                           (structure, size, "none"))
            tr.write_line(
                f"{structure:16s} {size:7d} {_fmt(pmtest)} {_fmt(pmc):>10s}"
            )

    if "fig10b" in figures:
        tr.section("Figure 10b reproduction: PMTest overhead breakdown")
        tr.write_line(f"{'structure':16s} {'txsize':>7s} {'framework':>10s} "
                      f"{'+checkers':>10s}")
        rows = sorted(
            {(cfg[0], cfg[1]) for fig, cfg in RESULTS if fig == "fig10b"}
        )
        for structure, size in rows:
            framework = slowdown(
                "fig10b", (structure, size, "pmtest-framework"),
                (structure, size, "none"))
            full = slowdown("fig10b", (structure, size, "pmtest"),
                            (structure, size, "none"))
            tr.write_line(
                f"{structure:16s} {size:7d} {_fmt(framework):>10s} "
                f"{_fmt(full):>10s}"
            )

    if "fig10c" in figures:
        tr.section("Ablation: cross-trace verdict cache (repeated traces)")
        off = RESULTS.get(("fig10c", ("cache-off",)))
        on = RESULTS.get(("fig10c", ("cache-on",)))
        if off and on:
            tr.write_line(
                f"cache-off: {off * 1000:8.2f} ms   "
                f"cache-on: {on * 1000:8.2f} ms   "
                f"speedup {off / on:5.2f}x"
            )
        if VERDICT_CACHE:
            tr.write_line(
                f"hit rate {VERDICT_CACHE.get('hit_rate', 0.0):.1%}   "
                f"dead writes coalesced "
                f"{int(VERDICT_CACHE.get('writes_merged', 0))}"
            )

    if "fig11" in figures:
        tr.section("Figure 11 reproduction: real-workload slowdown")
        rows = sorted({cfg[0] for fig, cfg in RESULTS if fig == "fig11"})
        ratios = []
        for workload in rows:
            ratio = slowdown("fig11", (workload, "pmtest"),
                             (workload, "none"))
            if ratio is not None:
                ratios.append(ratio)
            tr.write_line(f"{workload:22s} PMTest {_fmt(ratio)}")
        pmc = slowdown("fig11", ("redis+lru", "pmemcheck"),
                       ("redis+lru", "none"))
        if pmc is not None:
            tr.write_line(f"{'redis+lru':22s} Pmemcheck {_fmt(pmc)}")
        if ratios:
            tr.write_line(f"{'average':22s} PMTest "
                          f"{_fmt(sum(ratios) / len(ratios))}")

    if "fig12" in figures:
        tr.section("Figure 12 reproduction: Memcached scalability")
        tr.write_line(f"{'threads':>7s} {'workers':>8s} {'slowdown':>9s}")
        rows = sorted(
            {(cfg[0], cfg[1]) for fig, cfg in RESULTS
             if fig == "fig12" and cfg[2] == "pmtest"}
        )
        for threads, workers in rows:
            ratio = slowdown("fig12", (threads, workers, "pmtest"),
                             (threads, 0, "none"))
            tr.write_line(f"{threads:7d} {workers:8d} {_fmt(ratio):>9s}")

    if "ablation-batching" in figures:
        tr.section("Ablation: trace batching (SEND_TRACE granularity)")
        rows = sorted(
            {cfg[0] for fig, cfg in RESULTS if fig == "ablation-batching"}
        )
        for every in rows:
            ratio = slowdown("ablation-batching", (every, "pmtest"),
                             (every, "none"))
            tr.write_line(f"trace_every={every:<5d} PMTest {_fmt(ratio)}")

    if "ablation-sites" in figures:
        tr.section("Ablation: source-site capture")
        for mode in ("off", "on"):
            ratio = slowdown("ablation-sites", (mode, "pmtest"),
                             ("off", "none"))
            tr.write_line(f"capture_sites={mode:3s} PMTest {_fmt(ratio)}")

    if "fig12-backend" in figures:
        tr.section("Backend scaling: checking throughput (thread vs process)")
        tr.write_line(f"{'backend':>8s} {'workers':>8s} {'seconds':>9s} "
                      f"{'vs 1 worker':>12s}")
        rows = sorted(
            {cfg for fig, cfg in RESULTS if fig == "fig12-backend"}
        )
        for backend, workers in rows:
            seconds = RESULTS.get(("fig12-backend", (backend, workers)))
            base = RESULTS.get(("fig12-backend", (backend, 1)))
            scaling = (
                f"{base / seconds:10.2f}x" if seconds and base else "       n/a"
            )
            tr.write_line(
                f"{backend:>8s} {workers:8d} {seconds:9.4f} {scaling:>12s}"
            )

    if "fig12-transport" in figures:
        tr.section("Ablation: wire transport & codec (process backend)")
        tr.write_line(f"{'transport':>9s} {'codec':>7s} {'seconds':>9s} "
                      f"{'vs queue+pickle':>16s}")
        rows = sorted(
            {cfg for fig, cfg in RESULTS if fig == "fig12-transport"}
        )
        base = RESULTS.get(("fig12-transport", ("queue", "pickle")))
        for transport, codec in rows:
            seconds = RESULTS.get(("fig12-transport", (transport, codec)))
            speedup = (
                f"{base / seconds:14.2f}x" if seconds and base else "       n/a"
            )
            tr.write_line(
                f"{transport:>9s} {codec:>7s} {seconds:9.4f} {speedup:>16s}"
            )
        if WIRE_BYTES:
            for codec in sorted(WIRE_BYTES):
                tr.write_line(
                    f"{codec:>7s} wire: {WIRE_BYTES[codec]:8.1f} bytes/trace"
                )
            ratio = WIRE_BYTES.get("pickle", 0) / WIRE_BYTES["binary"]
            tr.write_line(f"binary ships {ratio:.2f}x fewer bytes per trace")

    if "fig12-engine" in figures or ENGINE_BEST:
        tr.section("Ablation: replay engine (object vs columnar)")
        for engine in sorted(
            {cfg[0] for fig, cfg in RESULTS if fig == "fig12-engine"}
        ):
            seconds = RESULTS.get(("fig12-engine", (engine,)))
            tr.write_line(f"{engine:>9s} decode+check: {seconds:9.4f} s")
        if ENGINE_BEST.get("columnar"):
            speedup = ENGINE_BEST["object"] / ENGINE_BEST["columnar"]
            tr.write_line(
                f"columnar best-of-rounds speedup {speedup:5.2f}x "
                "(fig10a micro workload)"
            )
        for engine in sorted(DECODE_REPLAY):
            row = DECODE_REPLAY[engine]
            tr.write_line(
                f"{engine:>9s} split: decode {row['decode_seconds']*1000:8.2f} ms"
                f"   replay {row['replay_seconds']*1000:8.2f} ms"
                f"   ({row['batches']} batches)"
            )

    if "fig12-shard" in figures:
        tr.section("Epoch-sharded checking: large traces split across workers")
        tr.write_line(f"{'backend':>8s} {'workers':>8s} {'seconds':>9s} "
                      f"{'vs 1 worker':>12s}")
        rows = sorted({cfg for fig, cfg in RESULTS if fig == "fig12-shard"})
        for backend, workers in rows:
            seconds = RESULTS.get(("fig12-shard", (backend, workers)))
            base = RESULTS.get(("fig12-shard", (backend, 1)))
            scaling = (
                f"{base / seconds:10.2f}x" if seconds and base else "       n/a"
            )
            tr.write_line(
                f"{backend:>8s} {workers:8d} {seconds:9.4f} {scaling:>12s}"
            )

    if "ablation-shadow" in figures:
        tr.section("Ablation: interval-map vs per-byte shadow memory")
        interval = RESULTS.get(("ablation-shadow", ("interval",)))
        naive = RESULTS.get(("ablation-shadow", ("naive",)))
        if interval and naive:
            tr.write_line(
                f"interval map: {interval * 1000:8.2f} ms   "
                f"per-byte dict: {naive * 1000:8.2f} ms   "
                f"speedup {naive / interval:5.1f}x"
            )

    if "ablation-intervalquery" in figures:
        tr.section("Ablation: bounded interval-map queries vs per-byte")
        interval = RESULTS.get(("ablation-intervalquery", ("interval",)))
        naive = RESULTS.get(("ablation-intervalquery", ("naive",)))
        if interval and naive:
            tr.write_line(
                f"interval map: {interval * 1000:8.2f} ms   "
                f"per-byte dict: {naive * 1000:8.2f} ms   "
                f"speedup {naive / interval:5.1f}x"
            )

    if "fig12k" in figures or SHADOW_BEST:
        tr.section("Fig 12k: shadow-plane ablation (object vs array)")
        for shadow in sorted(
            {cfg[0] for fig, cfg in RESULTS if fig == "fig12k"}
        ):
            seconds = RESULTS.get(("fig12k", (shadow,)))
            tr.write_line(f"{shadow:>7s} validate: {seconds * 1000:9.2f} ms")
        if SHADOW_BEST.get("array"):
            speedup = SHADOW_BEST["object"] / SHADOW_BEST["array"]
            tr.write_line(
                f"array best-of-rounds speedup {speedup:5.2f}x "
                "(interval-heavy micro workload)"
            )

    if "fig12i" in figures or DAEMON_LOAD:
        tr.section("Fig 12i: checking-as-a-service daemon load")
        for cfg in ("library", "daemon-uds", "daemon-overload"):
            seconds = RESULTS.get(("fig12i", (cfg,)))
            if seconds:
                tr.write_line(f"{cfg:>16s}: {seconds * 1000:8.2f} ms")
        if DAEMON_LOAD:
            rate = DAEMON_LOAD.get("sustained_traces_per_sec")
            p99 = DAEMON_LOAD.get("frame_p99_ms")
            if rate is not None and p99 is not None:
                tr.write_line(
                    f"sustained {rate:8.0f} traces/s   "
                    f"frame p50 {DAEMON_LOAD.get('frame_p50_ms', 0):.2f} ms   "
                    f"p99 {p99:.2f} ms"
                )
            sheds = DAEMON_LOAD.get("overload_sheds_per_round")
            if sheds is not None:
                tr.write_line(
                    f"2x overload: {sheds:6.1f} sheds/round, still "
                    f"{DAEMON_LOAD.get('overload_traces_per_sec', 0):8.0f}"
                    " traces/s to verdict"
                )

    if "fig12j" in figures or ZEROCOPY:
        tr.section("Fig 12j: zero-copy shard dispatch ablation")
        payload_t = RESULTS.get(("fig12j", ("payload",)))
        arena_t = RESULTS.get(("fig12j", ("arena",)))
        if payload_t and arena_t:
            tr.write_line(
                f"payload dispatch: {payload_t * 1000:8.2f} ms   "
                f"arena dispatch: {arena_t * 1000:8.2f} ms   "
                f"speedup {payload_t / arena_t:5.2f}x"
            )
        serial = RESULTS.get(("fig12j-shard", ("process", 1)))
        parallel = RESULTS.get(("fig12j-shard", ("process", 4)))
        if serial and parallel:
            tr.write_line(
                f"sharded scaling 4-vs-1 workers: {serial / parallel:5.2f}x"
            )
        if ZEROCOPY:
            tr.write_line(
                f"dispatch wire: "
                f"{ZEROCOPY.get('dispatch_bytes_per_shard', 0):.1f} B/shard "
                f"({int(ZEROCOPY.get('events_large_trace', 0))}-event trace "
                f"ships {int(ZEROCOPY.get('dispatch_bytes_large_trace', 0))}"
                " B total)"
            )

    _dump_json(tr)


def _dump_json(tr) -> None:
    """Write every recorded mean (plus derived scaling numbers) to the
    path in ``PMTEST_BENCH_JSON`` so runs can be committed/compared."""
    path = os.environ.get("PMTEST_BENCH_JSON")
    if not path:
        return
    payload = {
        "cpu_count": os.cpu_count(),
        "mean_seconds": {
            f"{figure}/{'/'.join(str(part) for part in config)}": seconds
            for (figure, config), seconds in sorted(RESULTS.items())
        },
    }
    backends = sorted(
        {cfg[0] for fig, cfg in RESULTS if fig == "fig12-backend"}
    )
    if backends:
        scaling = {}
        for backend in backends:
            base = RESULTS.get(("fig12-backend", (backend, 1)))
            for fig, cfg in sorted(RESULTS):
                if fig != "fig12-backend" or cfg[0] != backend or not base:
                    continue
                seconds = RESULTS[(fig, cfg)]
                scaling[f"{backend}/{cfg[1]}-workers"] = (
                    base / seconds if seconds else None
                )
        payload["backend_throughput_scaling_vs_1_worker"] = scaling
    engine_base = RESULTS.get(("fig12-engine", ("object",)))
    engine_col = RESULTS.get(("fig12-engine", ("columnar",)))
    if engine_base and engine_col:
        payload["engine_replay_speedup_columnar_vs_object"] = (
            engine_base / engine_col
        )
    if ENGINE_BEST.get("columnar"):
        payload["engine_best_of_rounds"] = dict(sorted(ENGINE_BEST.items()))
        payload["engine_best_speedup_columnar_vs_object"] = (
            ENGINE_BEST["object"] / ENGINE_BEST["columnar"]
        )
    shadow_obj = RESULTS.get(("fig12k", ("object",)))
    shadow_arr = RESULTS.get(("fig12k", ("array",)))
    if shadow_obj and shadow_arr:
        payload["shadow_validate_speedup_array_vs_object"] = (
            shadow_obj / shadow_arr
        )
    if SHADOW_BEST.get("array"):
        payload["shadow_best_of_rounds"] = dict(sorted(SHADOW_BEST.items()))
        payload["shadow_best_speedup_array_vs_object"] = (
            SHADOW_BEST["object"] / SHADOW_BEST["array"]
        )
    if DECODE_REPLAY:
        payload["decode_replay_split"] = {
            engine: DECODE_REPLAY[engine] for engine in sorted(DECODE_REPLAY)
        }
    shard_backends = sorted(
        {cfg[0] for fig, cfg in RESULTS if fig == "fig12-shard"}
    )
    if shard_backends:
        scaling = {}
        for backend in shard_backends:
            base = RESULTS.get(("fig12-shard", (backend, 1)))
            for fig, cfg in sorted(RESULTS):
                if fig != "fig12-shard" or cfg[0] != backend or not base:
                    continue
                seconds = RESULTS[(fig, cfg)]
                scaling[f"{backend}/{cfg[1]}-workers"] = (
                    base / seconds if seconds else None
                )
        payload["sharded_checking_scaling_vs_1_worker"] = scaling
    transport_base = RESULTS.get(("fig12-transport", ("queue", "pickle")))
    if transport_base:
        payload["transport_drain_speedup_vs_queue_pickle"] = {
            f"{cfg[0]}+{cfg[1]}": transport_base / seconds if seconds else None
            for (fig, cfg), seconds in sorted(RESULTS.items())
            if fig == "fig12-transport"
        }
    if WIRE_BYTES:
        payload["wire_bytes_per_trace"] = dict(sorted(WIRE_BYTES.items()))
        payload["wire_bytes_ratio_pickle_over_binary"] = (
            WIRE_BYTES["pickle"] / WIRE_BYTES["binary"]
        )
    cache_off = RESULTS.get(("fig10c", ("cache-off",)))
    cache_on = RESULTS.get(("fig10c", ("cache-on",)))
    if cache_off and cache_on:
        payload["verdict_cache_speedup"] = cache_off / cache_on
        payload["verdict_cache"] = dict(sorted(VERDICT_CACHE.items()))
    zc_payload = RESULTS.get(("fig12j", ("payload",)))
    zc_arena = RESULTS.get(("fig12j", ("arena",)))
    if zc_payload and zc_arena:
        payload["zerocopy_dispatch_speedup_arena_vs_payload"] = (
            zc_payload / zc_arena
        )
    zc_serial = RESULTS.get(("fig12j-shard", ("process", 1)))
    if zc_serial:
        payload["zerocopy_sharded_scaling_vs_1_worker"] = {
            f"process/{cfg[1]}-workers": (
                zc_serial / seconds if seconds else None
            )
            for (fig, cfg), seconds in sorted(RESULTS.items())
            if fig == "fig12j-shard"
        }
    if ZEROCOPY:
        payload["zerocopy_dispatch_bytes"] = dict(sorted(ZEROCOPY.items()))
    if DAEMON_LOAD:
        payload["daemon_load"] = dict(sorted(DAEMON_LOAD.items()))
        library = RESULTS.get(("fig12i", ("library",)))
        daemon = RESULTS.get(("fig12i", ("daemon-uds",)))
        if library and daemon:
            payload["daemon_overhead_vs_library"] = daemon / library
    if METRICS:
        payload["metrics"] = {
            f"{figure}/{'/'.join(str(part) for part in config)}": data
            for (figure, config), data in sorted(METRICS.items())
        }
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    tr.write_line(f"benchmark JSON written to {path}")
