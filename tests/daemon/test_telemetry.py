"""Tests for the live telemetry plane: flight recorder, stats
payloads, Prometheus exposition, the HTTP endpoint, and the
``stats``/``flight`` session frames."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.metrics import MetricsLevel, MetricsRegistry
from repro.daemon import (
    CheckingClient,
    FlightRecorder,
    build_stats_payload,
    render_prometheus,
    start_in_thread,
)

from tests.daemon.conftest import library_verdict, make_traces, verdict_key


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestFlightRecorder:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(0)

    def test_bounded_ring_drops_oldest(self):
        flight = FlightRecorder(3, clock=FakeClock())
        for i in range(5):
            flight.record("shed", session=i)
        assert len(flight) == 3
        assert flight.dropped == 2
        sessions = [e["session"] for e in flight.events()]
        assert sessions == [2, 3, 4]  # oldest first, oldest two gone

    def test_events_carry_seq_ts_kind(self):
        flight = FlightRecorder(8, clock=FakeClock())
        flight.record("chaos", point="daemon.accept")
        (event,) = flight.events()
        assert event["seq"] == 0
        assert event["ts"] == 1001.0
        assert event["kind"] == "chaos"
        assert event["point"] == "daemon.accept"

    def test_to_json_shape(self):
        flight = FlightRecorder(2, clock=FakeClock())
        for i in range(3):
            flight.record("slow_frame", session=i)
        payload = json.loads(flight.to_json())
        assert payload["capacity"] == 2
        assert payload["recorded"] == 3
        assert payload["dropped"] == 1
        assert len(payload["events"]) == 2


class TestPrometheusRendering:
    PAYLOAD = {
        "ts": 123.0,
        "sessions": {"active": 1, "served": 4, "aborted": 0, "rejected": 2},
        "traces_accepted": 40,
        "admission": {
            "frames_admitted": 9,
            "bytes_admitted": 4096,
            "frames_shed": 1,
            "bytes_shed": 512,
            "inflight_bytes": 0,
            "inflight_limit": 1 << 20,
        },
        "frame_ns": {"count": 9, "p50": 1000, "p99": 9000},
        "tenants": {
            "acme": {
                "frames_admitted": 9,
                "bytes_admitted": 4096,
                "frames_shed": 1,
                "bytes_shed": 512,
                "sessions_rejected": 2,
                "sessions": 1,
                "traces": 40,
                "queued_traces": 3,
                "frame_ns": {"count": 9, "p50": 1000, "p99": 9000},
            },
        },
    }

    def test_payload_series(self):
        text = render_prometheus(self.PAYLOAD)
        lines = text.splitlines()
        assert "pmtest_daemon_sessions_served 4" in lines
        assert "pmtest_daemon_traces_accepted 40" in lines
        assert "pmtest_daemon_frames_shed 1" in lines
        assert "pmtest_daemon_frame_ns_p99 9000" in lines
        assert 'pmtest_daemon_tenant_traces{tenant="acme"} 40' in lines
        assert (
            'pmtest_daemon_tenant_frame_ns_p50{tenant="acme"} 1000' in lines
        )
        assert text.endswith("\n")

    def test_registry_series_flatten_dots(self):
        registry = MetricsRegistry(MetricsLevel.FULL)
        registry.counter("daemon.sessions").inc(3)
        registry.histogram("stage.check_ns").record(1024)
        text = render_prometheus(self.PAYLOAD, registry)
        lines = text.splitlines()
        assert "pmtest_daemon_sessions 3" in lines
        assert "pmtest_stage_check_ns_count 1" in lines
        assert "pmtest_stage_check_ns_sum 1024" in lines
        assert any(
            line.startswith("pmtest_stage_check_ns_p99 ") for line in lines
        )

    def test_label_values_escaped(self):
        payload = {
            "sessions": {},
            "admission": {},
            "tenants": {'we"ird': {"traces": 1}},
        }
        text = render_prometheus(payload)
        assert 'tenant="we\\"ird"' in text


class TestStatsSessions:
    def test_stats_once_counts_tenants(self, uds_path):
        traces = make_traces(8)
        with start_in_thread(
            uds=uds_path, workers=0,
            metrics=MetricsRegistry(MetricsLevel.FULL),
        ):
            with CheckingClient(
                f"unix://{uds_path}", tenant="acme"
            ) as checking:
                for trace in traces:
                    checking.submit(trace)
                checking.drain()
                observer = CheckingClient(f"unix://{uds_path}")
                try:
                    payload = observer.stats_once()
                finally:
                    observer.abort()
        assert payload["tenants"]["acme"]["traces"] == 8
        assert payload["tenants"]["acme"]["sessions"] == 1
        assert payload["sessions"]["active"] >= 1
        assert payload["traces_accepted"] == 8
        # Full metrics -> the frame latency quantiles are present.
        assert payload["tenants"]["acme"]["frame_ns"]["count"] >= 1

    def test_stats_stream_yields_repeatedly(self, uds_path):
        with start_in_thread(
            uds=uds_path, workers=0, telemetry_interval_ms=20
        ):
            observer = CheckingClient(f"unix://{uds_path}")
            try:
                stream = observer.stats_stream(interval_ms=20)
                payloads = [next(stream), next(stream)]
            finally:
                observer.abort()
        assert payloads[1]["ts"] >= payloads[0]["ts"]
        assert all("admission" in p for p in payloads)

    def test_flight_fetch_sees_session_lifecycle(self, uds_path):
        traces = make_traces(4)
        with start_in_thread(
            uds=uds_path, workers=0,
            metrics=MetricsRegistry(MetricsLevel.BASIC),
        ):
            with CheckingClient(
                f"unix://{uds_path}", tenant="acme"
            ) as checking:
                for trace in traces:
                    checking.submit(trace)
            observer = CheckingClient(f"unix://{uds_path}")
            try:
                events = observer.fetch_flight()
            finally:
                observer.abort()
        kinds = {e["kind"] for e in events}
        assert "session_opened" in kinds
        assert "session_closed" in kinds
        closed = [e for e in events if e["kind"] == "session_closed"]
        assert any(e["tenant"] == "acme" for e in closed)

    def test_flight_empty_when_metrics_off(self, uds_path, monkeypatch):
        # metrics=None falls back to the env, so force it off for real.
        monkeypatch.setenv("PMTEST_METRICS", "off")
        with start_in_thread(uds=uds_path, workers=0, metrics=None):
            observer = CheckingClient(f"unix://{uds_path}")
            try:
                events = observer.fetch_flight()
            finally:
                observer.abort()
        assert events == []

    def test_verdict_identical_with_telemetry_on(self, uds_path):
        """The whole plane must be invisible to checking semantics."""
        from repro.core.tracing import Tracer

        traces = make_traces(10, broken_every=3)
        expected = verdict_key(library_verdict(traces, num_workers=0))
        with start_in_thread(
            uds=uds_path, workers=0,
            metrics=MetricsRegistry(MetricsLevel.FULL),
            tracer=Tracer(),
        ):
            client = CheckingClient(
                f"unix://{uds_path}",
                tracer=Tracer(),
                metrics=MetricsRegistry(MetricsLevel.FULL),
            )
            for trace in traces:
                client.submit(trace)
            result = client.close()
        assert verdict_key(result) == expected

    def test_client_merges_server_shipped_registry(self, uds_path):
        traces = make_traces(6)
        with start_in_thread(
            uds=uds_path, workers=0,
            metrics=MetricsRegistry(MetricsLevel.FULL),
        ):
            client = CheckingClient(
                f"unix://{uds_path}",
                metrics=MetricsRegistry(MetricsLevel.FULL),
                batch_size=2,
            )
            for trace in traces:
                client.submit(trace)
            client.drain()
            client.drain()  # checkpointed drains must not double-count
            snapshot = client.metrics_snapshot()
            client.close()
        assert snapshot is not None
        assert snapshot.counter_value("client.frames_sent") >= 3
        # Server-side engine counters rode back on the verdict, once.
        assert snapshot.counter_value("engine.traces") == 6


class TestHttpEndpoint:
    def _get(self, address, path):
        url = f"http://{address[0]}:{address[1]}{path}"
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode()

    def test_metrics_and_healthz(self, uds_path):
        traces = make_traces(5)
        with start_in_thread(
            uds=uds_path, workers=0,
            metrics=MetricsRegistry(MetricsLevel.FULL),
            http_host="127.0.0.1", http_port=0,
        ) as handle:
            address = handle.server.http_address
            assert address is not None
            with CheckingClient(
                f"unix://{uds_path}", tenant="acme"
            ) as client:
                for trace in traces:
                    client.submit(trace)
                client.drain()
                status, body = self._get(address, "/metrics")
                assert status == 200
                assert "pmtest_daemon_sessions_served" in body
                assert (
                    'pmtest_daemon_tenant_traces{tenant="acme"} 5' in body
                )
            # The session pool's registry merges into the server's at
            # close, so the engine counters appear on the next scrape.
            _, body = self._get(address, "/metrics")
            assert "pmtest_engine_traces 5" in body
            status, body = self._get(address, "/healthz")
            assert status == 200
            assert body == "ok\n"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(address, "/nope")
            assert excinfo.value.code == 404

    def test_http_listener_closes_with_server(self, uds_path):
        with start_in_thread(
            uds=uds_path, workers=0,
            metrics=MetricsRegistry(MetricsLevel.BASIC),
            http_host="127.0.0.1", http_port=0,
        ) as handle:
            address = handle.server.http_address
            status, _ = self._get(address, "/healthz")
            assert status == 200
        with pytest.raises(OSError):
            urllib.request.urlopen(
                f"http://{address[0]}:{address[1]}/healthz", timeout=2
            )


class TestStatsPayloadUnit:
    def test_build_payload_uses_injected_clock(self, uds_path):
        with start_in_thread(uds=uds_path, workers=0) as handle:
            payload = build_stats_payload(
                handle.server, clock=lambda: 77.0
            )
        assert payload["ts"] == 77.0
        assert payload["sessions"]["served"] == 0
        assert payload["tenants"] == {}
