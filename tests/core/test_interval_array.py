"""Differential suite: the array-backed interval store is a drop-in.

The contract under test (DESIGN.md §14): ``ArrayIntervalMap`` is the
struct-of-arrays twin of :class:`~repro.core.interval_map.IntervalMap`
— flat ``starts``/``ends``/``codes`` columns plus a value-interning
codec — and every operation, batched or not, must agree with the
object map segment for segment, including the ``QueryStats``
accounting the paper's query-depth metric is built on.  The object map
is the oracle throughout; a separate dict-of-addresses model cross-
checks both in ``test_interval_map.py``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval_array import (
    SHADOW_ENV_VAR,
    SHADOW_NAMES,
    ArrayIntervalMap,
    ValueCodec,
    resolve_shadow_name,
)
from repro.core.interval_map import IntervalMap, QueryStats

# ----------------------------------------------------------------------
# Operation sequences
# ----------------------------------------------------------------------

_ADDR = st.integers(min_value=0, max_value=120)


@st.composite
def _ranges(draw):
    lo = draw(_ADDR)
    hi = draw(st.integers(min_value=lo + 1, max_value=128))
    return lo, hi


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("assign"), _ranges(), st.integers(0, 5)),
        st.tuples(st.just("erase"), _ranges(), st.just(0)),
        st.tuples(st.just("update"), _ranges(), st.integers(0, 5)),
        st.tuples(st.just("coalesce"), st.just((0, 1)), st.just(0)),
    ),
    max_size=40,
)


def _apply(m, op, rng, value):
    lo, hi = rng
    if op == "assign":
        m.assign(lo, hi, value)
    elif op == "erase":
        m.erase(lo, hi)
    elif op == "update":
        m.update(lo, hi, lambda s, e, v: v + value)
    else:
        m.coalesce()


def _pair(ops):
    """Replay one op sequence into both stores."""
    obj: IntervalMap[int] = IntervalMap()
    arr = ArrayIntervalMap()
    for op, rng, value in ops:
        _apply(obj, op, rng, value)
        _apply(arr, op, rng, value)
    return obj, arr


# ----------------------------------------------------------------------
# Properties: per-operation parity with the object map
# ----------------------------------------------------------------------


class TestArrayMapDifferential:
    @given(_OPS)
    @settings(max_examples=200, deadline=None)
    def test_segments_identical(self, ops):
        obj, arr = _pair(ops)
        assert list(obj) == list(arr)
        assert len(obj) == len(arr)
        assert obj.total_span() == arr.total_span()

    @given(_OPS, _ranges())
    @settings(max_examples=200, deadline=None)
    def test_queries_identical(self, ops, query):
        obj, arr = _pair(ops)
        lo, hi = query
        assert obj.overlaps(lo, hi) == arr.overlaps(lo, hi)
        assert obj.overlaps(lo, hi, clip=False) == arr.overlaps(
            lo, hi, clip=False
        )
        assert obj.gaps(lo, hi) == arr.gaps(lo, hi)
        assert obj.covers(lo, hi) == arr.covers(lo, hi)
        for point in (lo, hi - 1, 0, 128):
            assert obj.get(point) == arr.get(point)

    @given(_OPS, _ranges())
    @settings(max_examples=200, deadline=None)
    def test_query_stats_identical(self, ops, query):
        """The paper's query-depth accounting must not notice the swap:
        same queries count, same scanned count, mutations still free."""
        obj, arr = _pair(ops)
        obj.stats = so = QueryStats()
        arr.stats = sa = QueryStats()
        lo, hi = query
        obj.overlaps(lo, hi)
        arr.overlaps(lo, hi)
        obj.covers(lo, hi)
        arr.covers(lo, hi)
        obj.gaps(lo, hi)
        arr.gaps(lo, hi)
        obj.assign(lo, hi, 9)
        arr.assign(lo, hi, 9)
        assert (so.queries, so.scanned) == (sa.queries, sa.scanned)
        assert so.queries == 3  # assign is a mutation, not a query

    @given(_OPS)
    @settings(max_examples=100, deadline=None)
    def test_update_all_identical(self, ops):
        obj, arr = _pair(ops)
        obj.update_all(lambda s, e, v: v * 2 + 1)
        arr.update_all(lambda s, e, v: v * 2 + 1)
        assert list(obj) == list(arr)

    @given(_OPS)
    @settings(max_examples=50, deadline=None)
    def test_clear_identical(self, ops):
        obj, arr = _pair(ops)
        obj.clear()
        arr.clear()
        assert list(arr) == []
        assert not arr
        assert arr.total_span() == 0


# ----------------------------------------------------------------------
# Properties: batched epoch operations
# ----------------------------------------------------------------------

_ITEMS = st.lists(
    st.tuples(_ranges(), st.integers(0, 5)), min_size=1, max_size=24
)


class TestBatchedOps:
    @given(_OPS, _ITEMS)
    @settings(max_examples=200, deadline=None)
    def test_assign_many_equals_sequential(self, ops, items):
        """One sorted-sweep splice == the same assigns applied in
        order, including overlapping items (later wins)."""
        obj, arr = _pair(ops)
        for (lo, hi), value in items:
            obj.assign(lo, hi, value)
        arr.assign_many([(lo, hi, value) for (lo, hi), value in items])
        assert list(obj) == list(arr)

    @given(_OPS, st.lists(_ranges(), min_size=1, max_size=16))
    @settings(max_examples=200, deadline=None)
    def test_overlaps_many_equals_loop(self, ops, queries):
        obj, arr = _pair(ops)
        arr.stats = stats = QueryStats()
        batched = arr.overlaps_many(queries)
        arr.stats = None
        assert batched == [obj.overlaps(lo, hi) for lo, hi in queries]
        # Batched lookups bill exactly like a loop of overlaps().
        check: IntervalMap[int] = IntervalMap(list(obj))
        check.stats = loop = QueryStats()
        for lo, hi in queries:
            check.overlaps(lo, hi)
        assert (stats.queries, stats.scanned) == (loop.queries, loop.scanned)

    @given(_OPS, st.lists(_ranges(), min_size=1, max_size=16))
    @settings(max_examples=200, deadline=None)
    def test_covers_many_equals_loop(self, ops, queries):
        obj, arr = _pair(ops)
        assert arr.covers_many(queries) == [
            obj.covers(lo, hi) for lo, hi in queries
        ]

    @given(_OPS, st.lists(_ranges(), min_size=1, max_size=10))
    @settings(max_examples=200, deadline=None)
    def test_update_many_equals_sequential(self, ops, ranges):
        # update_many requires sorted, disjoint ranges: normalize.
        merged = []
        for lo, hi in sorted(ranges):
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(hi, merged[-1][1]))
            else:
                merged.append((lo, hi))
        obj, arr = _pair(ops)
        for lo, hi in merged:
            obj.update(lo, hi, lambda s, e, v: v + 7)
        arr.update_many(merged, lambda s, e, v: v + 7)
        assert list(obj) == list(arr)

    def test_assign_many_empty_is_noop(self):
        arr = ArrayIntervalMap()
        arr.assign_many([])
        assert list(arr) == []

    def test_invalid_range_rejected_everywhere(self):
        arr = ArrayIntervalMap()
        for call in (
            lambda: arr.assign(5, 5, 1),
            lambda: arr.overlaps(7, 3),
            lambda: arr.assign_many([(3, 3, 1)]),
            lambda: arr.update_many([(9, 2)], lambda s, e, v: v),
            lambda: arr.covers_many([(4, 4)]),
        ):
            with pytest.raises(ValueError, match="empty or inverted"):
                call()


# ----------------------------------------------------------------------
# Codec interning and int64 overflow boxing
# ----------------------------------------------------------------------


class TestCodec:
    def test_equal_values_share_codes(self):
        codec = ValueCodec()
        a = codec.encode((1, "x"))
        b = codec.encode((1, "x"))
        c = codec.encode((2, "y"))
        assert a == b != c
        assert codec.decode(a) == (1, "x")
        assert len(codec) == 2

    def test_map_reuses_codes_across_segments(self):
        arr = ArrayIntervalMap()
        arr.assign(0, 10, "hot")
        arr.assign(20, 30, "hot")
        arr.assign(40, 50, "cold")
        assert len(arr.codec) == 2

    def test_overflow_boxes_but_stays_correct(self):
        """Addresses past int64 flip the columns to plain lists; the
        map keeps answering identically."""
        big = 2**63  # one past array('q')
        arr = ArrayIntervalMap()
        arr.assign(0, 10, "a")
        arr.assign(big, big + 4, "b")
        assert arr._boxed
        assert arr.get(big) == "b"
        assert arr.get(big + 4) is None
        assert arr.overlaps(0, big + 8) == [(0, 10, "a"), (big, big + 4, "b")]
        arr.assign(5, big + 2, "c")
        assert list(arr) == [
            (0, 5, "a"), (5, big + 2, "c"), (big + 2, big + 4, "b")
        ]

    def test_overflow_during_batch(self):
        big = 2**63
        obj: IntervalMap = IntervalMap()
        arr = ArrayIntervalMap()
        items = [(0, 8, "a"), (big - 4, big + 4, "b"), (4, 12, "c")]
        for lo, hi, value in items:
            obj.assign(lo, hi, value)
        arr.assign_many(items)
        assert list(obj) == list(arr)


# ----------------------------------------------------------------------
# Shadow-name resolution (the --shadow / PMTEST_SHADOW knob)
# ----------------------------------------------------------------------


class TestShadowSelection:
    def test_default_is_object(self, monkeypatch):
        monkeypatch.delenv(SHADOW_ENV_VAR, raising=False)
        assert resolve_shadow_name(None) == "object"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(SHADOW_ENV_VAR, "array")
        assert resolve_shadow_name(None) == "array"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(SHADOW_ENV_VAR, "array")
        assert resolve_shadow_name("object") == "object"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown shadow"):
            resolve_shadow_name("simd")
        assert SHADOW_NAMES == ("object", "array")

    def test_make_shadow_for_swaps_x86(self):
        from repro.core.rules import X86Rules
        from repro.core.shadow import make_shadow_for

        assert isinstance(
            make_shadow_for(X86Rules(), "array").pm, ArrayIntervalMap
        )
        assert isinstance(make_shadow_for(X86Rules(), "object").pm, IntervalMap)

    def test_make_shadow_for_keeps_custom_shadows(self):
        """Models with bespoke shadow classes (naive x86, eADR) or no
        codec (HOPS) silently keep the object map — the knob is a
        performance choice, never a behavioural one."""
        from repro.core.rules import EADRRules, HOPSRules, NaiveX86Rules
        from repro.core.shadow import make_shadow_for

        for rules in (NaiveX86Rules(), EADRRules(), HOPSRules()):
            pm = make_shadow_for(rules, "array").pm
            assert not isinstance(pm, ArrayIntervalMap), type(rules).__name__
