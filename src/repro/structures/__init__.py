"""WHISPER-style persistent data structures (the paper's microbenchmarks).

Figure 10 of the paper evaluates PMTest on five PMDK-based
microbenchmarks; this package implements all five from scratch on
:mod:`repro.pmdk`:

=====================  ====================================================
``ctree``              crit-bit tree (internal nodes test one key bit)
``btree``              B-tree with top-down split insertion and the two
                       historical bug sites of paper Table 6 (missing
                       snapshot in ``create_split_node``; duplicate
                       snapshot in ``rotate_left``)
``rbtree``             red-black tree with the rbtree_map.c bug site
                       (rotation modifies a node without logging it)
``hashmap_tx``         chained hash map, every operation transactional
``hashmap_atomic``     chained hash map built on low-level flush/fence
                       publication (no transactions)
=====================  ====================================================

Every structure supports named fault injection so the synthetic-bug
corpus (:mod:`repro.bugs`) can reproduce the paper's Table 5 bug classes,
and exposes an offline image validator used for crash ground truth.
"""

from repro.structures.base import PersistentMap, StructureError
from repro.structures.btree import BTree
from repro.structures.ctree import CTree
from repro.structures.hashmap_atomic import AtomicHashMap
from repro.structures.hashmap_tx import TxHashMap
from repro.structures.rbtree import RBTree

ALL_STRUCTURES = {
    "ctree": CTree,
    "btree": BTree,
    "rbtree": RBTree,
    "hashmap_tx": TxHashMap,
    "hashmap_atomic": AtomicHashMap,
}

__all__ = [
    "ALL_STRUCTURES",
    "AtomicHashMap",
    "BTree",
    "CTree",
    "PersistentMap",
    "RBTree",
    "StructureError",
    "TxHashMap",
]
