"""A Mnemosyne-like persistence library (raw word log + persistent map).

The paper's Memcached workload runs on Mnemosyne (Volos et al.,
ASPLOS '11); its primitive vocabulary — per paper Figure 2(a) — is a raw
append-only log (``log_append`` / ``log_flush``) underneath lightweight
durable transactions.  This package rebuilds that stack:

``log``
    The raw redo log: fixed-size word records appended, flushed, and
    checkpointed; crash recovery replays the committed suffix.
``pmap``
    A persistent hash map whose updates are made failure-atomic through
    the redo log — the structure behind the Memcached workload's
    persistent key-value state.
"""

from repro.mnemosyne.log import RawWordLog, replay_log
from repro.mnemosyne.pmap import MnemosyneMap

__all__ = ["MnemosyneMap", "RawWordLog", "replay_log"]
