"""End-to-end daemon tests: sessions, equality with library mode,
timeouts, graceful drain."""

import socket
import threading
import time

import pytest

from repro.core.api import PMTestSession
from repro.core.traceio import decode_message, encode_stop_message
from repro.daemon import (
    AdmissionPolicy,
    CheckingClient,
    DaemonError,
    DaemonOverloaded,
    start_in_thread,
)
from repro.daemon.client import parse_address
from repro.daemon.protocol import read_frame, write_frame, frame_bytes

from tests.daemon.conftest import library_verdict, make_traces, verdict_key


class TestParseAddress:
    def test_forms(self):
        assert parse_address(("::1", 9000)) == (socket.AF_INET, ("::1", 9000))
        assert parse_address("tcp://h:12") == (socket.AF_INET, ("h", 12))
        assert parse_address("h:12") == (socket.AF_INET, ("h", 12))
        assert parse_address(":12") == (socket.AF_INET, ("127.0.0.1", 12))
        assert parse_address("unix:///tmp/x.sock") == (
            socket.AF_UNIX, "/tmp/x.sock"
        )
        assert parse_address("/tmp/x.sock") == (socket.AF_UNIX, "/tmp/x.sock")
        assert parse_address("./rel/x.sock") == (
            socket.AF_UNIX, "./rel/x.sock"
        )

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_address("just-a-hostname")
        with pytest.raises(ValueError):
            parse_address("host:notaport")


class TestSessions:
    def test_uds_verdict_identical_to_library(self, uds_path):
        traces = make_traces(12)
        expected = verdict_key(library_verdict(traces, num_workers=0))
        with start_in_thread(uds=uds_path, workers=0) as handle:
            client = CheckingClient(f"unix://{uds_path}", batch_size=5)
            for trace in traces:
                client.submit(trace)
            result = client.close()
        assert verdict_key(result) == expected
        assert handle.server.traces_accepted == 12

    def test_tcp_verdict_identical_to_library(self):
        traces = make_traces(12)
        expected = verdict_key(library_verdict(traces, num_workers=0))
        with start_in_thread(host="127.0.0.1", workers=0) as handle:
            host, port = handle.tcp_address
            client = CheckingClient((host, port), batch_size=4)
            for trace in traces:
                client.submit(trace)
            result = client.close()
        assert verdict_key(result) == expected

    def test_both_listeners_at_once(self, uds_path):
        traces = make_traces(4)
        expected = verdict_key(library_verdict(traces, num_workers=0))
        with start_in_thread(
            host="127.0.0.1", uds=uds_path, workers=0
        ) as handle:
            host, port = handle.tcp_address
            for address in (f"unix://{uds_path}", f"tcp://{host}:{port}"):
                client = CheckingClient(address)
                for trace in traces:
                    client.submit(trace)
                assert verdict_key(client.close()) == expected

    def test_intermediate_drain_is_cumulative(self, uds_path):
        traces = make_traces(8)
        expected = verdict_key(library_verdict(traces, num_workers=0))
        with start_in_thread(uds=uds_path, workers=0):
            client = CheckingClient(f"unix://{uds_path}", batch_size=3)
            for trace in traces[:4]:
                client.submit(trace)
            mid = client.drain()
            assert mid.traces_checked == 4
            for trace in traces[4:]:
                client.submit(trace)
            result = client.close()
        assert verdict_key(result) == expected

    def test_concurrent_sessions_are_isolated(self, uds_path):
        first = make_traces(6, offset=0)
        second = make_traces(6, offset=100, broken_every=0)
        expected_first = verdict_key(library_verdict(first, num_workers=0))
        expected_second = verdict_key(library_verdict(second, num_workers=0))
        assert expected_first != expected_second
        with start_in_thread(uds=uds_path, workers=0) as handle:
            a = CheckingClient(f"unix://{uds_path}", tenant="a")
            b = CheckingClient(f"unix://{uds_path}", tenant="b")
            # interleave frame-by-frame on one server
            for t_a, t_b in zip(first, second):
                a.submit(t_a)
                b.submit(t_b)
                a.flush()
                b.flush()
            assert handle.server.active_sessions == 2
            assert verdict_key(a.close()) == expected_first
            assert verdict_key(b.close()) == expected_second

    def test_session_with_thread_backend_workers(self, uds_path):
        traces = make_traces(10)
        expected = verdict_key(library_verdict(traces, num_workers=2))
        with start_in_thread(uds=uds_path, workers=2, backend="thread"):
            client = CheckingClient(f"unix://{uds_path}")
            for trace in traces:
                client.submit(trace)
            result = client.close()
        assert verdict_key(result) == expected

    def test_pmtest_session_accepts_client_as_sink(self, uds_path):
        with start_in_thread(uds=uds_path, workers=0):
            client = CheckingClient(f"unix://{uds_path}")
            with PMTestSession(sink=client) as session:
                session.write(0x2000, 64)
                session.clwb(0x2000, 64)
                session.sfence()
                session.is_persist(0x2000, 64)
            result = session.get_result()
            assert result.passed
            assert result.traces_checked == 1


class TestSessionErrors:
    def test_handshake_timeout(self, uds_path):
        with start_in_thread(uds=uds_path, workers=0,
                             handshake_timeout=0.1):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(5.0)
            sock.connect(uds_path)
            try:
                frame = read_frame(sock)
                assert frame is not None
                message = decode_message(frame)
                assert message[0] == "error"
                assert "handshake" in message[1]
            finally:
                sock.close()

    def test_idle_timeout_aborts_session(self, uds_path):
        with start_in_thread(uds=uds_path, workers=0,
                             idle_timeout=0.1) as handle:
            client = CheckingClient(f"unix://{uds_path}")
            time.sleep(0.5)
            with pytest.raises(DaemonError):
                client.submit(make_traces(1)[0])
                client.flush()
                client.drain()
            deadline = time.monotonic() + 5.0
            while handle.server.active_sessions and time.monotonic() < deadline:
                time.sleep(0.01)
            assert handle.server.active_sessions == 0
            assert handle.server.sessions_aborted == 1

    def test_first_frame_must_be_hello(self, uds_path):
        with start_in_thread(uds=uds_path, workers=0):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(5.0)
            sock.connect(uds_path)
            try:
                write_frame(sock, encode_stop_message())
                message = decode_message(read_frame(sock))
                assert message[0] == "error"
                assert "expected hello" in message[1]
            finally:
                sock.close()

    def test_undecodable_frame_aborts_but_server_survives(self, uds_path):
        with start_in_thread(uds=uds_path, workers=0) as handle:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(5.0)
            sock.connect(uds_path)
            try:
                sock.sendall(frame_bytes(b"garbage-not-pmtb"))
                message = decode_message(read_frame(sock))
                assert message[0] == "error"
            finally:
                sock.close()
            # the server keeps serving fresh sessions afterwards
            traces = make_traces(3)
            client = CheckingClient(f"unix://{uds_path}")
            for trace in traces:
                client.submit(trace)
            assert client.close().traces_checked == 3
            assert handle.server.sessions_served == 1

    def test_session_limit_rejects_with_overloaded(self, uds_path):
        policy = AdmissionPolicy(max_sessions=1)
        with start_in_thread(uds=uds_path, workers=0, policy=policy):
            first = CheckingClient(f"unix://{uds_path}")
            with pytest.raises(DaemonOverloaded, match="session limit"):
                CheckingClient(f"unix://{uds_path}", connect_retries=0)
            first.close()
            # capacity is back once the first session ends
            CheckingClient(f"unix://{uds_path}").close()

    def test_mid_frame_disconnect_aborts_session(self, uds_path):
        from repro.core.traceio import encode_hello_message
        from repro.daemon.protocol import FRAME_HEADER

        with start_in_thread(uds=uds_path, workers=0) as handle:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(5.0)
            sock.connect(uds_path)
            write_frame(sock, encode_hello_message("t"))
            assert decode_message(read_frame(sock))[0] == "welcome"
            # promise 100 bytes, send 3, vanish: a mid-stream kill
            sock.sendall(FRAME_HEADER.pack(100) + b"abc")
            sock.close()
            deadline = time.monotonic() + 5.0
            while handle.server.active_sessions and time.monotonic() < deadline:
                time.sleep(0.01)
            assert handle.server.active_sessions == 0
            assert handle.server.sessions_aborted == 1
            [event] = handle.server.events
            assert "protocol error" in str(event)


class TestGracefulDrain:
    def test_shutdown_answers_inflight_sessions(self, uds_path):
        traces = make_traces(10)
        expected = verdict_key(library_verdict(traces, num_workers=0))
        handle = start_in_thread(uds=uds_path, workers=0, drain_timeout=30.0)
        client = CheckingClient(f"unix://{uds_path}")
        for trace in traces:
            client.submit(trace)
        client.flush()
        # SIGTERM arrives while the session is mid-stream
        stopper = threading.Thread(target=handle.stop)
        stopper.start()
        deadline = time.monotonic() + 5.0
        while not handle.server.draining and time.monotonic() < deadline:
            time.sleep(0.01)
        assert handle.server.draining
        # the accepted session is still answered in full
        result = client.close()
        stopper.join(timeout=30.0)
        assert not stopper.is_alive()
        assert verdict_key(result) == expected

    def test_draining_server_refuses_new_sessions(self, uds_path):
        handle = start_in_thread(uds=uds_path, workers=0)
        held = CheckingClient(f"unix://{uds_path}")  # keeps drain pending
        stopper = threading.Thread(target=handle.stop)
        stopper.start()
        deadline = time.monotonic() + 5.0
        while not handle.server.draining and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.raises(DaemonError):
            CheckingClient(f"unix://{uds_path}", connect_retries=0)
        held.close()
        stopper.join(timeout=30.0)
        assert not stopper.is_alive()

    def test_stop_is_idempotent(self, uds_path):
        handle = start_in_thread(uds=uds_path, workers=0)
        handle.stop()
        handle.stop()

    def test_metrics_survive_session_close(self, uds_path):
        from repro.core.metrics import MetricsLevel, MetricsRegistry

        registry = MetricsRegistry(MetricsLevel.FULL)
        traces = make_traces(5)
        with start_in_thread(uds=uds_path, workers=0, metrics=registry) as h:
            client = CheckingClient(f"unix://{uds_path}")
            for trace in traces:
                client.submit(trace)
            client.close()
            deadline = time.monotonic() + 5.0
            while h.server.active_sessions and time.monotonic() < deadline:
                time.sleep(0.01)
            snapshot = h.server.metrics_snapshot()
        assert snapshot.counter_value("daemon.sessions") == 1
        assert snapshot.counter_value("daemon.traces") == 5
        # the session pool's engine counters were folded into the
        # server registry when the session closed
        assert snapshot.counter_value("engine.traces") == 5
        assert snapshot.histogram("daemon.frame_ns").count > 0
