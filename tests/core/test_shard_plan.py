"""Deterministic tests for the adaptive shard planner.

Every planner input here is an injected measurement — no timers — so
the plans asserted are exact, not flaky.
"""

import pytest

from repro.core.metrics import MetricsLevel, MetricsRegistry
from repro.core.shard_plan import (
    FLOOR_EVENTS,
    PLAN_ENV_VAR,
    SEED_NS_PER_EVENT,
    TARGET_SHARD_NS,
    ShardPlanner,
    resolve_plan_mode,
)


class TestResolvePlanMode:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV_VAR, "auto")
        assert resolve_plan_mode("off", 100) == "off"

    def test_env_wins_over_threshold_default(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV_VAR, "auto")
        assert resolve_plan_mode(None, 100) == "auto"
        assert resolve_plan_mode(None, None) == "auto"

    def test_threshold_implies_fixed(self, monkeypatch):
        monkeypatch.delenv(PLAN_ENV_VAR, raising=False)
        assert resolve_plan_mode(None, 100) == "fixed"

    def test_nothing_means_off(self, monkeypatch):
        monkeypatch.delenv(PLAN_ENV_VAR, raising=False)
        assert resolve_plan_mode(None, None) == "off"

    def test_empty_env_is_unset(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV_VAR, "")
        assert resolve_plan_mode(None, None) == "off"

    def test_bogus_values_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown shard plan"):
            resolve_plan_mode("fast", None)
        monkeypatch.setenv(PLAN_ENV_VAR, "bogus")
        with pytest.raises(ValueError, match="unknown shard plan"):
            resolve_plan_mode(None, None)


class TestModes:
    def test_off_never_shards(self):
        planner = ShardPlanner("off")
        assert planner.plan(10**9, 64) == 0

    def test_fixed_threshold(self):
        planner = ShardPlanner("fixed", min_events=100)
        assert planner.plan(99, 4) == 0
        assert planner.plan(100, 4) == 4
        assert planner.plan(100, 1) == 0  # one worker: nothing to split

    def test_fixed_requires_min_events(self):
        with pytest.raises(ValueError, match="min_events"):
            ShardPlanner("fixed")
        with pytest.raises(ValueError, match="min_events"):
            ShardPlanner("fixed", min_events=0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown shard plan"):
            ShardPlanner("always")


class TestAutoPlan:
    def test_seed_plans_conservatively(self):
        planner = ShardPlanner("auto")
        # 10k events * 350 ns = 3.5 ms of estimated work -> 7 target
        # shards, capped by workers and the 512-event floor.
        assert planner.plan(10_000, 4) == 4
        assert planner.plan(10_000, 16) == 7
        # barely over 2 target shards of work, floor allows 5: cost caps
        assert planner.plan(3_000, 16) == 2
        # 1500 events is ~1 target shard of work: stay unsharded
        assert planner.plan(1_500, 16) == 0

    def test_small_traces_never_shard(self):
        planner = ShardPlanner("auto")
        # under 2x floor there is no way to cut two full shards
        assert planner.plan(2 * FLOOR_EVENTS - 1, 8) == 0
        assert planner.plan(0, 8) == 0

    def test_cheap_replay_disables_sharding(self):
        planner = ShardPlanner("auto")
        for _ in range(40):
            planner.observe(10_000, 10_000 * 20)  # 20 ns/event measured
        assert planner.ns_per_event == pytest.approx(20, rel=0.05)
        # 10k events * 20 ns = 0.2 ms: less than one target shard
        assert planner.plan(10_000, 8) == 0
        # but a 100k-event trace is 2 ms of work -> 4 shards
        assert planner.plan(100_000, 8) == 4

    def test_expensive_replay_shards_harder(self):
        planner = ShardPlanner("auto")
        for _ in range(40):
            planner.observe(1_000, 1_000 * 2_000)  # 2 us/event
        assert planner.plan(2_000, 16) == 3  # floor binds: 2000 // 512
        assert planner.plan(5_000, 16) == 9  # min(16, cost 20, floor 9)

    def test_never_returns_one(self):
        planner = ShardPlanner("auto", target_shard_ns=1)
        for workers in range(0, 6):
            shards = planner.plan(FLOOR_EVENTS, workers)
            assert shards == 0 or shards >= 2

    def test_observe_ignores_empty_measurements(self):
        planner = ShardPlanner("auto")
        planner.observe(0, 1000)
        planner.observe(1000, 0)
        assert planner.observations == 0
        assert planner.ns_per_event == SEED_NS_PER_EVENT


class TestAbsorb:
    def registry(self, events: int, ns: int) -> MetricsRegistry:
        reg = MetricsRegistry(MetricsLevel.FULL)
        reg.counter("engine.events").inc(events)
        reg.counter("stage.shadow_update.ns").inc(ns // 2)
        reg.counter("stage.checker_validate.ns").inc(ns - ns // 2)
        return reg

    def test_absorb_uses_replay_stage_counters(self):
        planner = ShardPlanner("auto")
        planner.absorb(self.registry(1_000, 100_000))  # 100 ns/event
        assert planner.observations == 1
        expected = SEED_NS_PER_EVENT + 0.3 * (100 - SEED_NS_PER_EVENT)
        assert planner.ns_per_event == pytest.approx(expected)

    def test_absorb_folds_only_the_delta(self):
        planner = ShardPlanner("auto")
        reg = self.registry(1_000, 100_000)
        planner.absorb(reg)
        baseline = planner.ns_per_event
        planner.absorb(reg)  # identical snapshot: no delta, no update
        assert planner.ns_per_event == baseline
        assert planner.observations == 1
        # growth since the watermark folds at the *delta* rate
        reg.counter("engine.events").inc(1_000)
        reg.counter("stage.shadow_update.ns").inc(500_000)  # 500 ns/ev
        planner.absorb(reg)
        assert planner.observations == 2
        assert planner.ns_per_event == pytest.approx(
            baseline + 0.3 * (500 - baseline)
        )

    def test_absorb_without_counters_is_noop(self):
        planner = ShardPlanner("auto")
        planner.absorb(MetricsRegistry(MetricsLevel.FULL))
        planner.absorb(None)
        assert planner.observations == 0
