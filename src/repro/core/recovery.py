"""Typed recovery events for the fault-tolerant checking pipeline.

The supervised backends (:mod:`repro.core.backends`) and the
:class:`~repro.core.workers.WorkerPool` used to append free-text strings
to ``diagnostics`` when they recovered from an infrastructure fault.
Strings are fine for humans but opaque to telemetry: the metrics layer
wants to count respawns per worker, the tracer wants to mark them on a
timeline, and tests want to assert on *kinds*, not substrings.

A :class:`RecoveryEvent` is the structured record — kind, worker id,
monotonic timestamp, plus the kind-specific fields — and
:meth:`RecoveryEvent.render` reproduces the exact legacy string, so
``TestResult.diagnostics`` (which remains a list of strings, excluded
from the wire encoding and from cross-backend equivalence) is
byte-identical to what the free-text era produced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, List, Optional


class RecoveryKind(Enum):
    """What happened.  One template per kind (see ``_TEMPLATES``)."""

    #: thread backend watchdog resent outstanding traces to live workers
    WATCHDOG_REDISTRIBUTE = "watchdog-redistribute"
    #: process backend watchdog requeued all outstanding traces
    WATCHDOG_REQUEUE = "watchdog-requeue"
    #: a dead worker thread was replaced on its queue
    RESPAWN_THREAD = "respawn-thread"
    #: a dead worker process was replaced by a fresh one
    RESPAWN_PROCESS = "respawn-process"
    #: a backend could not be spawned; the chain stepped down
    SPAWN_FALLBACK = "spawn-fallback"
    #: a backend was declared unhealthy mid-run and replaced
    DEGRADED = "degraded"
    #: the daemon shed a frame under overload, asking the client to retry
    SHED = "shed"
    #: the daemon rejected a session outright (overload rung 2 or policy)
    SESSION_REJECTED = "session-rejected"
    #: a session died mid-stream and its partial state was discarded
    SESSION_ABORTED = "session-aborted"

    def __str__(self) -> str:
        return self.value


#: Render templates.  These reproduce the historical diagnostic strings
#: byte for byte — the chaos equivalence suite asserts on them.
_TEMPLATES: Dict[RecoveryKind, str] = {
    RecoveryKind.WATCHDOG_REDISTRIBUTE: (
        "watchdog: no checking progress for {timeout:g}s; "
        "redistributed {requeued} outstanding trace(s)"
    ),
    RecoveryKind.WATCHDOG_REQUEUE: (
        "watchdog: no checking progress for {timeout:g}s; "
        "requeued {requeued} outstanding trace(s)"
    ),
    RecoveryKind.RESPAWN_THREAD: (
        "respawned checking worker thread {worker}; requeued "
        "{requeued} in-flight trace(s) "
        "(retry {retry}/{max_retries})"
    ),
    RecoveryKind.RESPAWN_PROCESS: (
        "respawned checking worker process {worker} as "
        "{new_worker} after exit code {exitcode}; requeued "
        "{requeued} trace(s) "
        "(retry {retry}/{max_retries})"
    ),
    RecoveryKind.SPAWN_FALLBACK: (
        "backend {backend!r} unavailable at spawn ({error}); "
        "degraded to {fallback!r}"
    ),
    RecoveryKind.DEGRADED: (
        "degraded checking backend {backend!r} -> {fallback!r}: {error}; "
        "salvaged {salvaged} result(s), resubmitting "
        "{resubmitted} unchecked trace(s)"
    ),
    RecoveryKind.SHED: (
        "admission: shed {nbytes} byte(s) from tenant {tenant!r} "
        "session {session} ({reason}); retry after {retry_after_ms}ms"
    ),
    RecoveryKind.SESSION_REJECTED: (
        "admission: rejected session from tenant {tenant!r}: {reason}"
    ),
    RecoveryKind.SESSION_ABORTED: (
        "session {session} (tenant {tenant!r}) aborted mid-stream: "
        "{reason}; released {nbytes} inflight byte(s)"
    ),
}


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery action taken by the checking infrastructure.

    ``timestamp`` is ``time.monotonic()`` at the moment the action was
    taken — comparable within a process, meaningless across machines.
    ``data`` holds the kind-specific fields used by :meth:`render`.
    """

    kind: RecoveryKind
    timestamp: float
    worker: Optional[int] = None
    data: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """The legacy diagnostic string for this event (byte-identical)."""
        return _TEMPLATES[self.kind].format(worker=self.worker, **self.data)

    # ------------------------------------------------------------------
    # Factories (one per kind, with typed arguments)
    # ------------------------------------------------------------------
    @classmethod
    def watchdog_redistribute(
        cls, timeout: float, requeued: int
    ) -> "RecoveryEvent":
        return cls(
            RecoveryKind.WATCHDOG_REDISTRIBUTE,
            time.monotonic(),
            data={"timeout": timeout, "requeued": requeued},
        )

    @classmethod
    def watchdog_requeue(cls, timeout: float, requeued: int) -> "RecoveryEvent":
        return cls(
            RecoveryKind.WATCHDOG_REQUEUE,
            time.monotonic(),
            data={"timeout": timeout, "requeued": requeued},
        )

    @classmethod
    def respawn_thread(
        cls, worker: int, requeued: int, retry: int, max_retries: int
    ) -> "RecoveryEvent":
        return cls(
            RecoveryKind.RESPAWN_THREAD,
            time.monotonic(),
            worker=worker,
            data={
                "requeued": requeued,
                "retry": retry,
                "max_retries": max_retries,
            },
        )

    @classmethod
    def respawn_process(
        cls,
        worker: int,
        new_worker: int,
        exitcode: Optional[int],
        requeued: int,
        retry: int,
        max_retries: int,
    ) -> "RecoveryEvent":
        return cls(
            RecoveryKind.RESPAWN_PROCESS,
            time.monotonic(),
            worker=worker,
            data={
                "new_worker": new_worker,
                "exitcode": exitcode,
                "requeued": requeued,
                "retry": retry,
                "max_retries": max_retries,
            },
        )

    @classmethod
    def spawn_fallback(
        cls, backend: str, error: BaseException, fallback: str
    ) -> "RecoveryEvent":
        # The repr is captured eagerly: the exception object itself must
        # not be retained (it pins tracebacks and is not picklable in
        # general).
        return cls(
            RecoveryKind.SPAWN_FALLBACK,
            time.monotonic(),
            data={
                "backend": backend,
                "error": repr(error),
                "fallback": fallback,
            },
        )

    @classmethod
    def degraded(
        cls,
        backend: str,
        fallback: str,
        error: BaseException,
        salvaged: int,
        resubmitted: int,
    ) -> "RecoveryEvent":
        return cls(
            RecoveryKind.DEGRADED,
            time.monotonic(),
            data={
                "backend": backend,
                "fallback": fallback,
                "error": str(error),
                "salvaged": salvaged,
                "resubmitted": resubmitted,
            },
        )


    @classmethod
    def shed(
        cls,
        session: int,
        tenant: str,
        nbytes: int,
        retry_after_ms: int,
        reason: str,
    ) -> "RecoveryEvent":
        return cls(
            RecoveryKind.SHED,
            time.monotonic(),
            data={
                "session": session,
                "tenant": tenant,
                "nbytes": nbytes,
                "retry_after_ms": retry_after_ms,
                "reason": reason,
            },
        )

    @classmethod
    def session_rejected(cls, tenant: str, reason: str) -> "RecoveryEvent":
        return cls(
            RecoveryKind.SESSION_REJECTED,
            time.monotonic(),
            data={"tenant": tenant, "reason": reason},
        )

    @classmethod
    def session_aborted(
        cls, session: int, tenant: str, reason: str, nbytes: int
    ) -> "RecoveryEvent":
        return cls(
            RecoveryKind.SESSION_ABORTED,
            time.monotonic(),
            data={
                "session": session,
                "tenant": tenant,
                "reason": reason,
                "nbytes": nbytes,
            },
        )


def render_events(events: Iterable[RecoveryEvent]) -> List[str]:
    """The legacy ``diagnostics`` string list for a stream of events."""
    return [event.render() for event in events]
