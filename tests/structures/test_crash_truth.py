"""Crash ground truth: structure invariants hold in every reachable state.

These tests close the loop the paper could not close cheaply: instead of
trusting PMTest's verdicts, we enumerate (or sample) the actual crash
states of the simulated machine, run the structure's offline recovery,
and check its consistency validator.

* Clean structures: **every** crash state recovers consistently.
* Faulted structures: **some** crash state is inconsistent — i.e. the
  bugs PMTest flags are real crash-consistency bugs, not artifacts.
"""

import random

import pytest

from repro.instr.runtime import PMRuntime
from repro.pmem.crash import CrashEnumerator
from repro.pmem.machine import PMMachine
from repro.pmdk.pool import PMPool
from repro.pmdk.tx import recover_image
from repro.structures import ALL_STRUCTURES
from repro.structures import btree as btree_mod
from repro.structures import ctree as ctree_mod
from repro.structures import hashmap_atomic as hma_mod
from repro.structures import hashmap_tx as hmt_mod
from repro.structures import rbtree as rbtree_mod

VALIDATORS = {
    "ctree": ctree_mod.validate_image,
    "btree": btree_mod.validate_image,
    "rbtree": rbtree_mod.validate_image,
    "hashmap_tx": hmt_mod.validate_image,
    "hashmap_atomic": hma_mod.validate_image,
}

STATE_BUDGET = 4096
SAMPLES = 64


def build(name, faults=()):
    machine = PMMachine(16 << 20)
    runtime = PMRuntime(machine=machine)
    pool = PMPool(runtime, log_capacity=512 * 1024)
    structure = ALL_STRUCTURES[name](pool, value_size=32, faults=faults)
    return machine, pool, structure


def crash_images(machine):
    enum = CrashEnumerator(machine)
    if enum.count() <= STATE_BUDGET:
        yield from enum.iter_images()
    else:
        yield from enum.sample(random.Random(0), SAMPLES)


def check_all_states(name, machine, pool, expect_consistent=True):
    validate = VALIDATORS[name]
    root_slot_addr = pool.root_slot_addr(0)
    inconsistent = 0
    total = 0
    for image in crash_images(machine):
        recover_image(image, pool.layout)
        total += 1
        if not validate(image, image.read_u64(root_slot_addr)):
            inconsistent += 1
    assert total > 0
    if expect_consistent:
        assert inconsistent == 0, f"{inconsistent}/{total} states inconsistent"
    else:
        assert inconsistent > 0, f"no inconsistent state among {total}"


@pytest.mark.parametrize("name", sorted(ALL_STRUCTURES))
class TestCleanStructures:
    def test_quiescent_state_is_consistent(self, name):
        machine, pool, structure = build(name)
        for key in range(12):
            structure.insert(key)
        check_all_states(name, machine, pool)

    def test_mid_transaction_crash_recovers(self, name):
        if name == "hashmap_atomic":
            pytest.skip("not transactional")
        machine, pool, structure = build(name)
        for key in range(10):
            structure.insert(key)
        # Wrap the next operation in an outer transaction that never
        # commits: its durability is deferred, so the machine holds the
        # full mid-transaction pending state when we "crash".
        pool.tx.begin()
        structure.insert(99)
        check_all_states(name, machine, pool)

    def test_mid_remove_crash_recovers(self, name):
        if name == "hashmap_atomic":
            pytest.skip("not transactional")
        machine, pool, structure = build(name)
        for key in range(10):
            structure.insert(key)
        pool.tx.begin()
        structure.remove(4)
        check_all_states(name, machine, pool)


class TestFaultedStructuresBreakSomewhere:
    """Each correctness fault must produce a real inconsistency in at
    least one reachable crash state (performance faults excluded)."""

    def test_ctree_unlogged_splice(self):
        machine, pool, structure = build("ctree", faults=("no-log-splice",))
        for key in range(8):
            structure.insert(key)
        pool.tx.begin()
        structure.insert(99)
        check_all_states("ctree", machine, pool, expect_consistent=False)

    def test_btree_unlogged_split(self):
        machine, pool, structure = build("btree", faults=("split-no-log",))
        for key in range(3):  # fill the root so the next insert splits
            structure.insert(key)
        pool.tx.begin()
        structure.insert(50)
        check_all_states("btree", machine, pool, expect_consistent=False)

    def test_hashmap_tx_unlogged_count(self):
        machine, pool, structure = build("hashmap_tx", faults=("no-log-count",))
        for key in range(5):
            structure.insert(key)
        pool.tx.begin()
        structure.insert(99)
        check_all_states("hashmap_tx", machine, pool, expect_consistent=False)

    def test_hashmap_atomic_unpersisted_entry(self):
        machine, pool, structure = build(
            "hashmap_atomic", faults=("no-entry-persist",)
        )
        for key in range(5):
            structure.insert(key)
        check_all_states("hashmap_atomic", machine, pool,
                         expect_consistent=False)

    def test_rbtree_unlogged_rotation(self):
        machine, pool, structure = build("rbtree", faults=("rotate-no-log",))
        # Ascending inserts force rotations.
        for key in range(6):
            structure.insert(key)
        pool.tx.begin()
        structure.insert(6)
        check_all_states("rbtree", machine, pool, expect_consistent=False)
