"""Trace vocabulary: PM operations and checkers with source metadata.

A PMTest trace is a program-order list of :class:`Event` records.  Each
record is either a PM operation executed by the program under test (write,
cache writeback, fence, transaction boundary) or a checker placed by the
programmer (Section 4.3 of the paper).  Every record carries the metadata
the paper describes: operation type, memory address, size, and the source
file and line that produced it, so that FAIL/WARN reports can point back at
the offending statement.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import List, Optional


class Op(Enum):
    """Kinds of trace records."""

    # --- PM operations -------------------------------------------------
    WRITE = auto()  # regular store to PM (lands in the volatile cache)
    WRITE_NT = auto()  # non-temporal store (bypasses the cache)
    CLWB = auto()  # cacheline writeback, line stays valid
    CLFLUSHOPT = auto()  # optimized flush, unordered like clwb
    CLFLUSH = auto()  # legacy flush (still a flush for persistency purposes)
    SFENCE = auto()  # x86 store fence: orders and completes prior flushes
    OFENCE = auto()  # HOPS ordering fence (no durability)
    DFENCE = auto()  # HOPS durability fence
    # --- transaction bookkeeping ---------------------------------------
    TX_BEGIN = auto()
    TX_END = auto()
    TX_ADD = auto()  # undo-log snapshot of a persistent object
    # --- testing-scope bookkeeping -------------------------------------
    EXCLUDE = auto()  # PMTest_EXCLUDE: drop object from testing scope
    INCLUDE = auto()  # PMTest_INCLUDE: restore object to testing scope
    # --- checkers --------------------------------------------------------
    CHECK_PERSIST = auto()  # isPersist(addr, size)
    CHECK_ORDER = auto()  # isOrderedBefore(addrA, sizeA, addrB, sizeB)
    TX_CHECK_START = auto()  # TX_CHECKER_START
    TX_CHECK_END = auto()  # TX_CHECKER_END


#: Operations that act on an address range.
RANGE_OPS = frozenset(
    {
        Op.WRITE,
        Op.WRITE_NT,
        Op.CLWB,
        Op.CLFLUSHOPT,
        Op.CLFLUSH,
        Op.TX_ADD,
        Op.EXCLUDE,
        Op.INCLUDE,
        Op.CHECK_PERSIST,
    }
)

#: Flush flavours (all establish a flush interval under x86 rules).
FLUSH_OPS = frozenset({Op.CLWB, Op.CLFLUSHOPT, Op.CLFLUSH})

#: Ordering fences (all advance the global timestamp).
FENCE_OPS = frozenset({Op.SFENCE, Op.OFENCE, Op.DFENCE})

#: Checker records: they validate against the shadow instead of updating
#: it.  The metrics layer attributes their cost to the "checker
#: validate" stage; everything else is "shadow update".
CHECKER_OPS = frozenset(
    {Op.CHECK_PERSIST, Op.CHECK_ORDER, Op.TX_CHECK_START, Op.TX_CHECK_END}
)


@dataclass(frozen=True, slots=True)
class SourceSite:
    """Source location of an operation or checker."""

    file: str
    line: int
    function: str = ""

    def __str__(self) -> str:
        return f"{self.file}:{self.line}"

    @staticmethod
    def capture(depth: int = 2) -> "SourceSite":
        """Capture the caller's source location.

        ``depth`` counts stack frames above this function: ``depth=2`` is
        the caller of the function that calls ``capture``.  Site capture is
        the single most expensive part of tracking, so the tracker makes it
        optional (the ablation bench measures the difference).
        """
        frame = sys._getframe(depth)
        code = frame.f_code
        return SourceSite(code.co_filename, frame.f_lineno, code.co_name)


@dataclass(slots=True)
class Event:
    """One trace record.

    ``addr``/``size`` describe the primary address range (unused for
    fences); ``addr2``/``size2`` carry the second range of
    ``isOrderedBefore``.  ``seq`` is the record's program-order index
    within its trace, filled in by the tracker.  ``site`` is ``None``
    when site capture is disabled.
    """

    op: Op
    addr: int = 0
    size: int = 0
    addr2: int = 0
    size2: int = 0
    site: Optional[SourceSite] = None
    seq: int = -1

    @property
    def end(self) -> int:
        return self.addr + self.size

    @property
    def end2(self) -> int:
        return self.addr2 + self.size2

    def describe(self) -> str:
        """Human-readable one-liner used in reports."""
        name = self.op.name.lower()
        where = f" at {self.site}" if self.site else ""
        if self.op is Op.CHECK_ORDER:
            return (
                f"{name}([{self.addr:#x}, {self.end:#x}) -> "
                f"[{self.addr2:#x}, {self.end2:#x})){where}"
            )
        if self.op in RANGE_OPS:
            return f"{name}([{self.addr:#x}, {self.end:#x})){where}"
        return f"{name}{where}"


@dataclass(slots=True)
class Trace:
    """A batch of events sent to the checking engine as one unit.

    Traces are independent: each gets its own shadow memory (paper
    Section 4.4, "every trace has its shadow memory").  ``trace_id`` is a
    monotonically increasing id assigned by the session; ``thread_name``
    records which program thread produced it.
    """

    trace_id: int
    events: List[Event] = field(default_factory=list)
    thread_name: str = "main"

    def __len__(self) -> int:
        return len(self.events)

    def append(self, event: Event) -> None:
        event.seq = len(self.events)
        self.events.append(event)
