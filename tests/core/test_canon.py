"""Canonical trace form: segment collection, relocation, fingerprints.

The contract under test (see :mod:`repro.core.canon`): two traces get
the same fingerprint exactly when they are the same replay up to a
per-segment constant offset, and the relocation table maps addresses —
and the hex literals in report messages — losslessly in both
directions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.canon import (
    CANON_BASE,
    Relocation,
    canonicalize,
    collect_segments,
)
from repro.core.events import Event, Op, SourceSite


def _events(base, site=None):
    """A small realistic skeleton over addresses derived from ``base``."""
    return [
        Event(Op.WRITE, base, 8, site=site, seq=0),
        Event(Op.WRITE, base + 8, 8, site=site, seq=1),
        Event(Op.CLWB, base, 16, site=site, seq=2),
        Event(Op.SFENCE, seq=3),
        Event(Op.CHECK_PERSIST, base, 16, site=site, seq=4),
        Event(Op.CHECK_ORDER, base, 8, base + 8, 8, site=site, seq=5),
    ]


class TestCollectSegments:
    def test_empty(self):
        assert collect_segments([]) == []
        assert collect_segments([Event(Op.SFENCE)]) == []

    def test_merges_overlapping_and_touching(self):
        events = [
            Event(Op.WRITE, 0x100, 8),
            Event(Op.WRITE, 0x108, 8),  # touches the first
            Event(Op.WRITE, 0x104, 16),  # overlaps both
            Event(Op.WRITE, 0x200, 4),  # separate cluster
        ]
        assert collect_segments(events) == [(0x100, 0x114), (0x200, 0x204)]

    def test_second_range_contributes(self):
        events = [Event(Op.CHECK_ORDER, 0x10, 4, 0x50, 4)]
        assert collect_segments(events) == [(0x10, 0x14), (0x50, 0x54)]

    def test_zero_size_range_pins_address(self):
        events = [Event(Op.WRITE, 0x40, 0)]
        assert collect_segments(events) == [(0x40, 0x41)]


class TestFingerprint:
    def test_deterministic(self):
        a = canonicalize(_events(0x1000))
        b = canonicalize(_events(0x1000))
        assert a.fingerprint == b.fingerprint

    def test_invariant_under_global_shift(self):
        a = canonicalize(_events(0x1000))
        b = canonicalize(_events(0xDEAD000))
        assert a.fingerprint == b.fingerprint

    def test_invariant_under_per_segment_shift(self):
        def two_clusters(base1, base2):
            return [
                Event(Op.WRITE, base1, 8, seq=0),
                Event(Op.WRITE, base2, 8, seq=1),
                Event(Op.SFENCE, seq=2),
            ]

        a = canonicalize(two_clusters(0x1000, 0x9000))
        b = canonicalize(two_clusters(0x4000, 0x5000))  # different distance
        assert a.fingerprint == b.fingerprint

    def test_sensitive_to_op_change(self):
        a = canonicalize(_events(0x1000))
        events = _events(0x1000)
        events[0] = Event(Op.WRITE_NT, 0x1000, 8, seq=0)
        assert canonicalize(events).fingerprint != a.fingerprint

    def test_sensitive_to_size_change(self):
        a = canonicalize(_events(0x1000))
        events = _events(0x1000)
        events[0] = Event(Op.WRITE, 0x1000, 4, seq=0)
        assert canonicalize(events).fingerprint != a.fingerprint

    def test_sensitive_to_order(self):
        events = _events(0x1000)
        swapped = [events[1], events[0]] + events[2:]
        assert (
            canonicalize(events).fingerprint
            != canonicalize(swapped).fingerprint
        )

    def test_sensitive_to_intra_segment_offset(self):
        # Touching vs overlapping writes differ within one segment.
        a = canonicalize(
            [Event(Op.WRITE, 0x100, 8, seq=0), Event(Op.WRITE, 0x108, 8, seq=1)]
        )
        b = canonicalize(
            [Event(Op.WRITE, 0x100, 8, seq=0), Event(Op.WRITE, 0x104, 8, seq=1)]
        )
        assert a.fingerprint != b.fingerprint

    def test_touching_vs_gapped_clusters_differ(self):
        # Touching ranges share a segment (their offset is pinned by the
        # canonical form); gapped ranges get independent segments — the
        # two traces must not collide even though a naive "shift every
        # cluster to zero" canonicalization would conflate them.
        touching = canonicalize(
            [Event(Op.WRITE, 0x100, 8, seq=0), Event(Op.WRITE, 0x108, 8, seq=1)]
        )
        gapped = canonicalize(
            [Event(Op.WRITE, 0x100, 8, seq=0), Event(Op.WRITE, 0x110, 8, seq=1)]
        )
        assert touching.fingerprint != gapped.fingerprint

    def test_sensitive_to_sites(self):
        site_a = SourceSite("a.c", 1)
        site_b = SourceSite("a.c", 2)
        a = canonicalize(_events(0x1000, site_a))
        b = canonicalize(_events(0x1000, site_b))
        assert a.fingerprint != b.fingerprint
        # ... but sites do not defeat address invariance.
        c = canonicalize(_events(0x8000, site_a))
        assert a.fingerprint == c.fingerprint

    def test_sensitive_to_explicit_seq_gaps(self):
        dense = [Event(Op.WRITE, 0x100, 8, seq=0), Event(Op.SFENCE, seq=1)]
        gapped = [Event(Op.WRITE, 0x100, 8, seq=0), Event(Op.SFENCE, seq=5)]
        assert (
            canonicalize(dense).fingerprint
            != canonicalize(gapped).fingerprint
        )


class TestRelocation:
    def test_round_trip_all_addresses(self):
        form = canonicalize(_events(0x1000))
        reloc = form.relocation
        # Closed-range mapping: interior addresses and the exclusive end.
        for addr in range(0x1000, 0x1010 + 1):
            canon = reloc.to_canon(addr)
            assert canon is not None and canon >= CANON_BASE
            assert reloc.to_orig(canon) == addr

    def test_outside_addresses_unmapped(self):
        reloc = canonicalize(_events(0x1000)).relocation
        assert reloc.to_canon(0xFFF) is None
        assert reloc.to_canon(0x1012) is None
        assert reloc.to_orig(0x1000) is None  # original space, not canonical

    def test_per_segment_offsets_preserved(self):
        events = [
            Event(Op.WRITE, 0x1000, 8, seq=0),
            Event(Op.WRITE, 0x9000, 8, seq=1),
        ]
        reloc = canonicalize(events).relocation
        assert len(reloc) == 2
        # Offsets within a segment survive the mapping.
        assert reloc.to_canon(0x1004) - reloc.to_canon(0x1000) == 4
        assert reloc.to_canon(0x9004) - reloc.to_canon(0x9000) == 4
        # Canonical segments never collide.
        assert reloc.to_canon(0x9000) > reloc.to_canon(0x1008)

    def test_message_rewrite_round_trip(self):
        reloc = canonicalize(_events(0x1000)).relocation
        message = "range [0x1000, 0x1010) overlaps [0x1008, 0x1010)"
        canon = reloc.rewrite_to_canon(message)
        assert canon is not None and canon != message
        assert reloc.rewrite_to_orig(canon) == message

    def test_message_with_foreign_literal_rejected(self):
        reloc = canonicalize(_events(0x1000)).relocation
        assert reloc.rewrite_to_canon("stray pointer 0xdead0000") is None

    def test_message_without_literals_unchanged(self):
        reloc = canonicalize(_events(0x1000)).relocation
        msg = "transaction is still open at the end of the checked scope"
        assert reloc.rewrite_to_canon(msg) == msg

    def test_empty_relocation(self):
        reloc = Relocation([])
        assert reloc.to_canon(0) is None
        assert reloc.rewrite_to_canon("no addresses here") == "no addresses here"


# ----------------------------------------------------------------------
# Property: fingerprints are invariant under random per-cluster shifts
# and the relocation round trip is lossless.
# ----------------------------------------------------------------------

_OPS_WITH_RANGE = [Op.WRITE, Op.WRITE_NT, Op.CLWB, Op.CLFLUSH, Op.CHECK_PERSIST]


@st.composite
def _random_trace(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    events = []
    for seq in range(n):
        if draw(st.booleans()):
            op = draw(st.sampled_from(_OPS_WITH_RANGE))
            offset = draw(st.integers(min_value=0, max_value=64))
            size = draw(st.integers(min_value=1, max_value=32))
            events.append(Event(op, 0x1000 + offset, size, seq=seq))
        else:
            events.append(Event(Op.SFENCE, seq=seq))
    return events


class TestCanonProperties:
    @given(_random_trace(), st.integers(min_value=0, max_value=1 << 30))
    @settings(max_examples=150, deadline=None)
    def test_fingerprint_shift_invariant(self, events, shift):
        shifted = [
            Event(e.op, e.addr + shift if (e.addr or e.size) else e.addr,
                  e.size, e.addr2, e.size2, e.site, e.seq)
            for e in events
        ]
        a = canonicalize(events)
        b = canonicalize(shifted)
        assert a.fingerprint == b.fingerprint

    @given(_random_trace())
    @settings(max_examples=150, deadline=None)
    def test_relocation_round_trip(self, events):
        reloc = canonicalize(events).relocation
        for lo, hi in collect_segments(events):
            for addr in (lo, (lo + hi) // 2, hi):  # closed range incl. end
                canon = reloc.to_canon(addr)
                assert canon is not None
                assert reloc.to_orig(canon) == addr


def test_canonicalize_rejects_nothing():
    # Structural sanity: a fence-only trace still fingerprints.
    form = canonicalize([Event(Op.SFENCE, seq=0)])
    assert isinstance(form.fingerprint, bytes) and len(form.fingerprint) == 16
    assert len(form.relocation) == 0


def test_fingerprint_distinguishes_event_count():
    one = canonicalize([Event(Op.SFENCE, seq=0)])
    two = canonicalize([Event(Op.SFENCE, seq=0), Event(Op.SFENCE, seq=1)])
    assert one.fingerprint != two.fingerprint


def test_invalid_range_never_raises():
    # canonicalize must tolerate structurally invalid events (the replay
    # rejects them later); zero-size ranges are pinned, not dropped.
    form = canonicalize([Event(Op.WRITE, 0x10, 0, seq=0)])
    assert form.relocation.to_canon(0x10) is not None


@pytest.mark.parametrize("base", [0, 1, 0x7FFFFFFF])
def test_extreme_bases(base):
    a = canonicalize(_events(base if base else 0x10))
    assert a.fingerprint
