"""Process-wide metrics: counters, gauges and log-scale histograms.

The paper's evaluation decomposes runtime cost into tracking vs. checker
time (Fig. 10b) and measures how the decoupled worker pool scales
(Fig. 12).  Reproducing those measurements — and trusting any further
performance work — needs first-class telemetry rather than ad-hoc prints,
so the checking pipeline records into a :class:`MetricsRegistry`:

``Counter``
    A monotonically increasing integer (events checked, nanoseconds
    spent in a stage, ...).  Merging sums.
``Gauge``
    A high-water mark (peak queue depth, peak shadow-segment count).
    Merging takes the maximum, which keeps merge commutative.
``Histogram``
    A distribution over non-negative integers (per-op dispatch latency
    in nanoseconds, FIFO occupancy) with **preallocated log2 buckets**:
    value ``v`` lands in bucket ``v.bit_length()`` (bucket 0 holds
    ``v <= 0``, the last bucket is the overflow bucket).  Recording is
    O(1) with no allocation; merging sums bucket-wise.

Registries are plain picklable data and **mergeable**: every worker
(thread or process) records into its own registry and the aggregate is
the commutative merge of all of them — the process backend ships worker
deltas back over the existing wire encoding
(:func:`repro.core.traceio.encode_registry`).

Cost discipline (the ``PMTEST_METRICS`` switch):

``off``
    No registry exists.  Every hook in the pipeline is a single
    ``is None`` branch, so tier-1 timings do not regress.
``basic``
    Counters and gauges only — no clock reads on per-event paths.
``full``
    Everything: per-opcode latency histograms, per-stage nanosecond
    totals, queue wait times, interval-map query depth.
"""

from __future__ import annotations

import os
from enum import Enum
from typing import Dict, List, Optional, Tuple

ENV_VAR = "PMTEST_METRICS"

#: Histogram bucket count: bucket ``i`` holds values with
#: ``bit_length() == i`` (i.e. ``[2**(i-1), 2**i)``); bucket 0 holds
#: ``v <= 0`` and the last bucket collects everything that would land
#: beyond it (the overflow bucket).  64 buckets cover every nanosecond
#: duration a 63-bit clock can produce.
NUM_BUCKETS = 64

JSON_FORMAT = "pmtest-metrics"
JSON_VERSION = 1


class MetricsLevel(Enum):
    """How much the pipeline records (see module docstring)."""

    OFF = "off"
    BASIC = "basic"
    FULL = "full"

    def __str__(self) -> str:
        return self.value


class QueryStats:
    """Per-interval-map query-depth accounting (attached only at ``full``).

    ``queries`` counts range queries answered; ``scanned`` sums the
    number of segments each query had to walk — the paper's
    interval-tree "query depth", the quantity that distinguishes the
    O(log n + k) interval map from a per-byte shadow.  Kept as two plain
    ints so the hot-path hook is one attribute test plus two adds.

    Each checker owns exactly one instance, created when the checker is
    built and attached to its private shadow map — never shared between
    shards or cached verdict templates, so per-shard accumulation cannot
    double count (templates copy the final integers out instead).
    """

    __slots__ = ("queries", "scanned")

    def __init__(self) -> None:
        self.queries = 0
        self.scanned = 0


def level_from_env(default: MetricsLevel = MetricsLevel.OFF) -> MetricsLevel:
    """Parse ``PMTEST_METRICS`` (unset or empty means ``default``)."""
    raw = os.environ.get(ENV_VAR, "").strip().lower()
    if not raw:
        return default
    try:
        return MetricsLevel(raw)
    except ValueError:
        raise ValueError(
            f"bad {ENV_VAR}={raw!r}; expected one of "
            f"{', '.join(level.value for level in MetricsLevel)}"
        ) from None


def make_registry(
    level: Optional[MetricsLevel] = None,
) -> Optional["MetricsRegistry"]:
    """Build a registry for ``level`` (default: from the environment).

    Returns ``None`` for :data:`MetricsLevel.OFF` — the pipeline's off
    path is "no registry object", so every hook costs one branch.
    """
    if level is None:
        level = level_from_env()
    if level is MetricsLevel.OFF:
        return None
    return MetricsRegistry(level)


class Counter:
    """A summed, monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value})"


class Gauge:
    """A high-water mark.  ``observe`` keeps the maximum ever seen."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def observe(self, v: int) -> None:
        if v > self.value:
            self.value = v

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.value})"


def bucket_index(value: int) -> int:
    """Log2 bucket for ``value``: 0 for ``v <= 0``, capped at overflow."""
    if value <= 0:
        return 0
    i = value.bit_length()
    return i if i < NUM_BUCKETS else NUM_BUCKETS - 1


def bucket_bound(index: int) -> int:
    """Exclusive upper bound of bucket ``index`` (`` <= 0`` for bucket 0)."""
    if index == 0:
        return 0
    return 1 << index


class Histogram:
    """Distribution over non-negative ints in preallocated log2 buckets."""

    __slots__ = ("counts", "count", "total", "vmin", "vmax")

    def __init__(self) -> None:
        self.counts: List[int] = [0] * NUM_BUCKETS
        self.count = 0
        self.total = 0
        self.vmin: Optional[int] = None
        self.vmax: Optional[int] = None

    def record(self, value: int) -> None:
        # A clock can report a 0-ns span (same counter read twice);
        # clamp anything non-positive into bucket 0 rather than raising
        # on a hot path.
        if value < 0:
            value = 0
        self.counts[bucket_index(value)] += 1
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> int:
        """Estimate the ``q``-quantile by log2-bucket interpolation.

        Finds the bucket holding the rank-``q`` sample and interpolates
        linearly between the bucket's bounds by the rank's position
        inside it (the Prometheus ``histogram_quantile`` convention),
        clamped to the observed ``[vmin, vmax]`` so the estimate never
        leaves the recorded range.  Resolution is still one power of
        two per bucket, but a p50 landing early in a wide bucket no
        longer reads as the bucket's far edge — which is what turns
        these O(1) log2 counts into usable p50/p99 latency readouts.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0
        rank = min(self.count - 1, int(q * self.count))
        cumulative = 0
        for index, n in enumerate(self.counts):
            if not n:
                continue
            if rank < cumulative + n:
                if index == 0:
                    return 0  # bucket 0 holds only v <= 0
                lower = bucket_bound(index - 1) if index > 1 else 1
                upper = bucket_bound(index)
                # Position of the rank inside this bucket, in (0, 1].
                fraction = (rank - cumulative + 1) / n
                estimate = int(lower + (upper - lower) * fraction)
                if self.vmin is not None and estimate < self.vmin:
                    estimate = self.vmin
                if self.vmax is not None and estimate > self.vmax:
                    estimate = self.vmax
                return estimate
            cumulative += n
        return self.vmax if self.vmax is not None else 0

    def merge(self, other: "Histogram") -> None:
        for i, n in enumerate(other.counts):
            if n:
                self.counts[i] += n
        self.count += other.count
        self.total += other.total
        for theirs in (other.vmin,):
            if theirs is not None and (self.vmin is None or theirs < self.vmin):
                self.vmin = theirs
        for theirs in (other.vmax,):
            if theirs is not None and (self.vmax is None or theirs > self.vmax):
                self.vmax = theirs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count}, total={self.total})"


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Not thread-safe by design: every recording site (the submitting
    thread, each worker thread, each worker process) owns its own
    registry, and aggregation happens by :meth:`merge`, which is
    commutative — the merged totals are independent of worker
    completion order.
    """

    __slots__ = ("level", "_counters", "_gauges", "_histograms")

    def __init__(self, level: MetricsLevel = MetricsLevel.BASIC) -> None:
        if level is MetricsLevel.OFF:
            raise ValueError("an OFF-level registry must not exist; use None")
        self.level = level
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    @property
    def full(self) -> bool:
        return self.level is MetricsLevel.FULL

    # ------------------------------------------------------------------
    # Metric access (get-or-create; hot paths cache the returned object)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counter_value(self, name: str, default: int = 0) -> int:
        c = self._counters.get(name)
        return c.value if c is not None else default

    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> Dict[str, int]:
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histograms(self) -> Dict[str, Histogram]:
        return dict(sorted(self._histograms.items()))

    def __bool__(self) -> bool:
        return bool(self._counters or self._gauges or self._histograms)

    # ------------------------------------------------------------------
    # Merge / copy
    # ------------------------------------------------------------------
    def merge(self, other: Optional["MetricsRegistry"]) -> "MetricsRegistry":
        """Fold ``other`` into this registry (commutative; returns self)."""
        if other is None:
            return self
        if other.level is MetricsLevel.FULL:
            self.level = MetricsLevel.FULL
        for name, c in other._counters.items():
            self.counter(name).inc(c.value)
        for name, g in other._gauges.items():
            self.gauge(name).observe(g.value)
        for name, h in other._histograms.items():
            self.histogram(name).merge(h)
        return self

    def snapshot(self) -> "MetricsRegistry":
        """A deep copy, safe to merge further without aliasing."""
        return MetricsRegistry(self.level).merge(self)

    def clear(self) -> None:
        """Forget everything recorded (used for delta shipping)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # ------------------------------------------------------------------
    # JSON form (the ``--metrics-json`` artifact; stable key order)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        histograms = {}
        for name, h in sorted(self._histograms.items()):
            histograms[name] = {
                "count": h.count,
                "total": h.total,
                "min": h.vmin,
                "max": h.vmax,
                # Sparse: bucket index -> count, only non-empty buckets.
                "buckets": {
                    str(i): n for i, n in enumerate(h.counts) if n
                },
            }
        return {
            "format": JSON_FORMAT,
            "version": JSON_VERSION,
            "level": self.level.value,
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": histograms,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        if data.get("format") != JSON_FORMAT:
            raise ValueError("not a pmtest-metrics document")
        if data.get("version") != JSON_VERSION:
            raise ValueError(
                f"unsupported metrics version {data.get('version')!r}"
            )
        reg = cls(MetricsLevel(data.get("level", "basic")))
        for name, value in data.get("counters", {}).items():
            reg.counter(name).inc(int(value))
        for name, value in data.get("gauges", {}).items():
            reg.gauge(name).observe(int(value))
        for name, payload in data.get("histograms", {}).items():
            h = reg.histogram(name)
            h.count = int(payload["count"])
            h.total = int(payload["total"])
            h.vmin = payload.get("min")
            h.vmax = payload.get("max")
            for index, n in payload.get("buckets", {}).items():
                h.counts[int(index)] = int(n)
        return reg


#: The pipeline stages of the Fig. 10b-style breakdown, in pipeline
#: order, mapped to their counter-name prefix.  ``<prefix>.ns`` holds
#: total nanoseconds (full level only) and ``<prefix>.count`` the number
#: of timed operations.
STAGES: Tuple[Tuple[str, str], ...] = (
    ("trace ingest", "stage.trace_ingest"),
    ("shadow update", "stage.shadow_update"),
    ("checker validate", "stage.checker_validate"),
    ("drain", "stage.drain"),
)


def stage_breakdown(registry: MetricsRegistry) -> List[Tuple[str, int, int]]:
    """Rows of ``(stage, total_ns, count)`` for the breakdown table."""
    return [
        (
            label,
            registry.counter_value(prefix + ".ns"),
            registry.counter_value(prefix + ".count"),
        )
        for label, prefix in STAGES
    ]
