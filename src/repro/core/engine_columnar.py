"""Columnar replay engine: bulk checking over struct-of-arrays traces.

A drop-in alternative to :class:`~repro.core.engine.CheckingEngine`
(selected with ``--engine columnar`` / ``PMTEST_ENGINE``) that replays
:class:`~repro.core.columns.ColumnarTrace` columns instead of per-event
objects.  Three things make it fast; none of them may change verdicts:

1. **No per-event objects.**  The replay loop reads opcode bytes and
   64-bit address/size columns directly.  A single reusable scratch
   :class:`~repro.core.events.Event` is filled only for the operations
   that need site/seq metadata in reports (handlers never retain the
   event — only its site and seq, which are immortal/immutable).
2. **Epoch-batched shadow updates.**  A maximal run of consecutive
   writes (fences and every other op delimit runs) is applied with one
   reverse sort-and-sweep: each write contributes only the subranges no
   *later* write in the run covers, and each surviving piece becomes a
   single ``IntervalMap.assign``.  This reproduces the exact final
   segmentation of sequential per-write assigns (writes never emit
   reports, nothing observes the map mid-run, and the epoch timestamp
   cannot advance inside a run), while dead writes cost nothing — the
   same argument behind :func:`repro.core.engine.coalesce_events`.
3. **Table-indexed dispatch over opcode runs.**  Dispatch compares the
   opcode byte against contiguous value ranges (writes / flushes /
   fences) and falls back to a list indexed by opcode — no enum
   hashing on the hot path.

Metrics-level contract (what the differential suite pins down):

* ``metrics=None`` and ``basic`` use the bulk paths; ``basic`` counts
  per-opcode totals from run lengths, which equal the object engine's
  per-event counts.
* ``metrics=full`` routes through the *inherited* per-event timed loop
  over scratch events, so query-depth stats, per-op histograms and
  stage timings are produced by literally the same code as the object
  engine.

Epoch shards (``ColumnarTrace.check_from > 0``) silently replay their
prefix — state effects only, via ``PersistencyRules.apply_op_silent``
— then check their own range normally.  Shards skip coalescing and the
verdict cache; the pool merges per-shard results deterministically.
"""

from __future__ import annotations

import os
from time import perf_counter_ns
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.core.canon import canonicalize_columns
from repro.core.columns import (
    FENCE_MAX,
    FENCE_MIN,
    FLUSH_MAX,
    OP_CHECK_PERSIST,
    OP_EXCLUDE,
    OP_INCLUDE,
    OP_SFENCE,
    OP_TX_ADD,
    OP_TX_BEGIN,
    OP_TX_CHECK_END,
    OP_TX_CHECK_START,
    OP_TX_END,
    OP_WRITE,
    OPS_BY_VALUE,
    WRITE_MAX,
    ColumnarTrace,
)
from repro.core.engine import (
    CheckingEngine,
    MalformedTrace,
    _TraceChecker,
    _with_trace_id,
)
from repro.core.events import Event, Op, SourceSite, Trace
from repro.core.interval_array import ArrayIntervalMap, resolve_shadow_name
from repro.core.interval_map import IntervalMap, QueryStats
from repro.core.logtree import LogTree
from repro.core.metrics import MetricsRegistry
from repro.core.npcompat import load_numpy
from repro.core.reports import TestResult
from repro.core.rules import PersistencyRules, X86Rules
from repro.core.shadow import SegmentState, make_shadow_for
from repro.core.verdict_cache import VerdictCache, build_template, rehydrate

__all__ = [
    "ENGINE_NAMES",
    "ColumnarCheckingEngine",
    "coalesce_columns",
    "make_engine",
    "resolve_engine_name",
]

ENGINE_NAMES = ("object", "columnar")

ENGINE_ENV_VAR = "PMTEST_ENGINE"

# epoch kernels use numpy when present (and not disabled via
# PMTEST_NO_NUMPY); never required
_np = load_numpy()

#: ``bytes.translate`` table mapping write opcodes to ``\x00`` and
#: everything else to ``\x01``: one translate turns "find the end of
#: this write run" into a C-speed ``bytes.find`` instead of a
#: per-element Python comparison loop.
_RUN_END_TABLE = bytes(
    0 if 1 <= b <= WRITE_MAX else 1 for b in range(256)
)


def _sizes_positive(sizes, start: int, end: int) -> bool:
    """Whether every size in ``[start, end)`` is positive — the
    precondition for the bulk write-run kernel (a non-positive size
    must instead replay sequentially so the structural-invalid error
    fires at the same event with the same partial shadow state as the
    object engine).  Vectorized under numpy; plain scan otherwise."""
    if _np is not None:
        try:
            s = _np.asarray(sizes[start:end], dtype=_np.int64)
        except (OverflowError, ValueError, TypeError):
            pass
        else:
            return bool((s > 0).all())
    for k in range(start, end):
        if sizes[k] <= 0:
            return False
    return True

#: Dispatch table indexed by opcode byte, mirroring
#: ``_TraceChecker._HANDLERS`` (index 0 and unknown bytes are ``None``).
_HANDLER_LIST = [None] * len(OPS_BY_VALUE)
for _op, _fn in _TraceChecker._HANDLERS.items():
    _HANDLER_LIST[_op.value] = _fn
del _op, _fn


def resolve_engine_name(name: Optional[str]) -> str:
    """Resolve the engine knob: explicit name, else ``PMTEST_ENGINE``,
    else ``object`` (the default until the equivalence suite owns CI)."""
    if name is None:
        name = os.environ.get(ENGINE_ENV_VAR) or "object"
    name = name.strip().lower()
    if name not in ENGINE_NAMES:
        raise ValueError(
            f"unknown engine {name!r}: expected one of {ENGINE_NAMES}"
        )
    return name


def make_engine(
    name: Optional[str],
    rules: Optional[PersistencyRules] = None,
    metrics: Optional[MetricsRegistry] = None,
    cache: Optional[VerdictCache] = None,
    coalesce: bool = True,
    shadow: Optional[str] = None,
):
    """Build the selected checking engine (``object`` or ``columnar``).

    ``shadow`` picks the interval store behind the shadow memory
    (``object`` / ``array``, defaulting through ``PMTEST_SHADOW``); it
    composes freely with either engine.
    """
    if resolve_engine_name(name) == "columnar":
        return ColumnarCheckingEngine(rules, metrics, cache=cache,
                                      coalesce=coalesce, shadow=shadow)
    return CheckingEngine(rules, metrics, cache=cache, coalesce=coalesce,
                          shadow=shadow)


# ----------------------------------------------------------------------
# Columnar dead-write coalescing (exact port of ``coalesce_events``)
# ----------------------------------------------------------------------
def coalesce_columns(
    cols: ColumnarTrace,
) -> Tuple[ColumnarTrace, int]:
    """Drop dead writes between barriers; column port of
    :func:`repro.core.engine.coalesce_events` (identical keep/drop
    decisions, hence identical fingerprints and drop counts)."""
    ops = cols.ops
    n = len(ops)
    previous_write = False
    for b in ops:
        is_write = b <= WRITE_MAX
        if is_write and previous_write:
            break
        previous_write = is_write
    else:
        return cols, 0
    addrs = cols.addrs
    sizes = cols.sizes
    keep: List[int] = []
    extend = keep.extend
    append = keep.append
    dropped = 0
    tx_check = False
    i = 0
    while i < n:
        b = ops[i]
        if b > WRITE_MAX:
            if b == OP_TX_CHECK_START:
                tx_check = True
            elif b == OP_TX_CHECK_END:
                tx_check = False
            append(i)
            i += 1
            continue
        j = i + 1
        while j < n and ops[j] <= WRITE_MAX:
            j += 1
        if j == i + 1 or tx_check:
            extend(range(i, j))
        elif j == i + 2:
            first_size = sizes[i]
            if (
                first_size > 0
                and addrs[i + 1] <= addrs[i]
                and addrs[i] + first_size <= addrs[i + 1] + sizes[i + 1]
            ):
                dropped += 1
            else:
                append(i)
            append(i + 1)
        else:
            coverage: IntervalMap[bool] = IntervalMap()
            run_keep = [True] * (j - i)
            for k in range(j - 1, i - 1, -1):
                size = sizes[k]
                if size <= 0:
                    continue  # structurally invalid; the replay rejects it
                lo = addrs[k]
                hi = lo + size
                if coverage.covers(lo, hi):
                    run_keep[k - i] = False
                    dropped += 1
                else:
                    coverage.assign(lo, hi, True)
            extend(k for k in range(i, j) if run_keep[k - i])
        i = j
    if not dropped:
        return cols, 0
    return cols.take(keep), dropped


# ----------------------------------------------------------------------
# Shard-result merging
# ----------------------------------------------------------------------
def merge_shard_results(results: List[TestResult]) -> TestResult:
    """Fold per-shard results (in shard order) into the one result a
    sequential replay of the whole trace would have produced: reports
    concatenate (each shard reports only its own range, in program
    order), event/checker counts sum, and the shard group counts as a
    single trace."""
    merged = TestResult(traces_checked=1)
    for result in results:
        merged.reports.extend(result.reports)
        merged.events_checked += result.events_checked
        merged.checkers_evaluated += result.checkers_evaluated
        merged.diagnostics.extend(result.diagnostics)
    return merged


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class ColumnarCheckingEngine:
    """Column-replay engine; accepts ``Trace`` or ``ColumnarTrace``.

    Mirrors :class:`~repro.core.engine.CheckingEngine`'s contract
    exactly — coalescing, verdict-cache flow, counters — so the two are
    interchangeable behind any backend.  Object-form traces are
    columnarized on entry; the win is largest when the binary transport
    decodes straight into columns and no object form ever exists.
    """

    def __init__(
        self,
        rules: Optional[PersistencyRules] = None,
        metrics: Optional[MetricsRegistry] = None,
        cache: Optional[VerdictCache] = None,
        coalesce: bool = True,
        shadow: Optional[str] = None,
    ) -> None:
        self.rules = rules if rules is not None else X86Rules()
        self.metrics = metrics
        self.cache = cache
        self.coalesce = coalesce
        self.shadow_name = resolve_shadow_name(shadow)
        self.writes_merged = 0

    # ------------------------------------------------------------------
    def check_trace(
        self, trace: Union[Trace, ColumnarTrace]
    ) -> TestResult:
        """Replay one trace (or one epoch shard); return its reports."""
        metrics = self.metrics
        if type(trace) is ColumnarTrace:
            cols = trace
        else:
            cols = ColumnarTrace.from_trace(trace)
        if cols.is_shard or cols.check_from:
            # Shards skip coalescing and the cache: their prefix is
            # replayed silently and their fingerprint would alias the
            # enclosing trace's prefix, not the shard's verdict.
            return _ColumnarChecker(
                self.rules, cols, metrics,
                events_checked=len(cols) - cols.check_from,
                finish_seq=len(cols),
                shadow=self.shadow_name,
            ).run()
        original_len = len(cols)
        if self.coalesce:
            cols, dropped = coalesce_columns(cols)
            if dropped:
                self.writes_merged += dropped
                if metrics is not None:
                    metrics.counter("coalesce.writes_merged").inc(dropped)
        cache = self.cache
        if cache is None:
            return _ColumnarChecker(
                self.rules, cols, metrics,
                events_checked=original_len, finish_seq=original_len,
                shadow=self.shadow_name,
            ).run()
        form = canonicalize_columns(cols)
        template = cache.lookup(form.fingerprint)
        if template is not None:
            result = rehydrate(
                template, form.relocation, cols.trace_id, original_len
            )
            if result is not None:
                if metrics is not None:
                    metrics.counter("cache.hits").inc(1)
                    self._record_hit(metrics, cols, template, result)
                return result
            cache.hits -= 1
            cache.misses += 1
            cache.uncacheable += 1
        if metrics is not None:
            metrics.counter("cache.misses").inc(1)
        checker = _ColumnarChecker(
            self.rules, cols, metrics,
            events_checked=original_len, finish_seq=original_len,
            shadow=self.shadow_name,
        )
        result = checker.run()
        qstats = checker.qstats
        new_template = build_template(
            result,
            form.relocation,
            cols.trace_id,
            queries=qstats.queries if qstats is not None else None,
            scanned=qstats.scanned if qstats is not None else None,
            shadow_segments=(
                len(checker.shadow.pm) if qstats is not None else None
            ),
        )
        if new_template is not None:
            evicted = cache.store(form.fingerprint, new_template)
            if evicted and metrics is not None:
                metrics.counter("cache.evictions").inc(evicted)
        else:
            cache.uncacheable += 1
            if metrics is not None:
                metrics.counter("cache.uncacheable").inc(1)
        return result

    @staticmethod
    def _record_hit(
        metrics: MetricsRegistry,
        cols: ColumnarTrace,
        template,
        result: TestResult,
    ) -> None:
        """Book a cache hit as the replay it stands for (column form of
        ``CheckingEngine._record_hit`` — identical counter totals)."""
        counter = metrics.counter
        counter("engine.traces").inc(1)
        counter("engine.events").inc(result.events_checked)
        counter("engine.checkers").inc(result.checkers_evaluated)
        counter("engine.reports").inc(len(result.reports))
        op_counts: dict = {}
        for b in cols.ops:
            op = OPS_BY_VALUE[b]
            op_counts[op] = op_counts.get(op, 0) + 1
        for op, count in op_counts.items():
            counter(f"engine.op.{op.name}").inc(count)
        if metrics.full:
            if template.queries is not None:
                counter("engine.interval_queries").inc(template.queries)
                counter("engine.interval_scanned").inc(template.scanned)
            if template.shadow_segments is not None:
                metrics.gauge("engine.shadow_segments").observe(
                    template.shadow_segments
                )
            for op, count in op_counts.items():
                histogram = metrics.histogram(f"engine.op_ns.{op.name}")
                for _ in range(count):
                    histogram.record(0)

    def check_traces(
        self, traces: Iterable[Union[Trace, ColumnarTrace]]
    ) -> TestResult:
        """Replay several independent traces and merge their results."""
        total = TestResult()
        for trace in traces:
            total.merge(self.check_trace(trace))
        return total


class _ColumnarChecker(_TraceChecker):
    """Per-trace checker state driving the columnar replay loops.

    Subclasses :class:`~repro.core.engine._TraceChecker` for its handler
    implementations (the slow-path ops dispatch to the very same
    methods through scratch events) while replacing the iteration
    machinery.
    """

    def __init__(
        self,
        rules: PersistencyRules,
        cols: ColumnarTrace,
        metrics: Optional[MetricsRegistry] = None,
        events_checked: Optional[int] = None,
        finish_seq: Optional[int] = None,
        shadow: str = "object",
    ) -> None:
        self.rules = rules
        self.cols = cols
        self.trace = cols  # only trace_id is ever read off this
        self.trace_id = cols.trace_id
        self.shadow = make_shadow_for(rules, shadow)
        self.metrics = metrics
        self.events = None
        self.events_checked = (
            events_checked if events_checked is not None else len(cols)
        )
        #: seq stamped on the implicit end-of-trace checker close; the
        #: engine passes the original (pre-coalescing) trace length
        self.finish_seq = finish_seq if finish_seq is not None else len(cols)
        #: per-checker query accounting (full metrics only), owned by
        #: this checker alone — shards each build their own, templates
        #: copy the final integers, nothing is shared or double counted
        self.qstats: Optional[QueryStats] = (
            QueryStats() if metrics is not None and metrics.full else None
        )
        self.result = TestResult(traces_checked=1)
        self.tx_depth = 0
        self.log_tree = LogTree()
        self.tx_check_active = False
        self.tx_check_site: Optional[SourceSite] = None
        self.modified: IntervalMap[Optional[SourceSite]] = IntervalMap()
        self.excluded: IntervalMap[bool] = IntervalMap()
        self._scratch = Event(Op.WRITE)

    # ------------------------------------------------------------------
    def run(self) -> TestResult:
        cols = self.cols
        start = cols.check_from
        if start:
            self._fast_forward(start)
        metrics = self.metrics
        result = self.result
        if metrics is None:
            self._replay(start, len(cols), None)
            self._finish()
        elif metrics.full:
            # Full level runs the inherited per-event timed loop over
            # scratch events: query stats, per-op histograms and stage
            # timings come from the identical code path as the object
            # engine, so full-metrics counters agree exactly.
            qstats = self.qstats
            self.shadow.pm.stats = qstats
            shadow_ns, shadow_n, checker_ns, checker_n = self._run_timed(
                self._iter_scratch(start), metrics
            )
            t0 = perf_counter_ns()
            self._finish()
            checker_ns += perf_counter_ns() - t0
            counter = metrics.counter
            counter("stage.shadow_update.ns").inc(shadow_ns)
            counter("stage.shadow_update.count").inc(shadow_n)
            counter("stage.checker_validate.ns").inc(checker_ns)
            counter("stage.checker_validate.count").inc(checker_n)
            counter("engine.interval_queries").inc(qstats.queries)
            counter("engine.interval_scanned").inc(qstats.scanned)
            metrics.gauge("engine.shadow_segments").observe(
                len(self.shadow.pm)
            )
        else:
            self._replay(start, len(cols), metrics)
            self._finish()
        result.events_checked += self.events_checked
        if metrics is not None:
            counter = metrics.counter
            counter("engine.traces").inc(1)
            counter("engine.events").inc(self.events_checked)
            counter("engine.checkers").inc(result.checkers_evaluated)
            counter("engine.reports").inc(len(result.reports))
        trace_id = self.trace_id
        reports = result.reports
        for i, report in enumerate(reports):
            if report.trace_id == -1:
                reports[i] = _with_trace_id(report, trace_id)
        return result

    def _finish(self) -> None:
        if self.tx_check_active:
            self._on_tx_check_end(self.tx_check_site, self.finish_seq)

    def _iter_scratch(self, start: int) -> Iterator[Event]:
        """Scratch-event view of the columns (full-metrics replay)."""
        cols = self.cols
        scratch = self._scratch
        fill = cols.fill
        for i in range(start, len(cols)):
            yield fill(i, scratch)

    # ------------------------------------------------------------------
    # The bulk replay loop (metrics off / basic)
    # ------------------------------------------------------------------
    def _replay(
        self, i: int, end: int, metrics: Optional[MetricsRegistry]
    ) -> None:
        cols = self.cols
        ops = cols.ops
        addrs = cols.addrs
        sizes = cols.sizes
        site_idx = cols.site_idx
        site_table = cols.site_table
        seqs = cols.seqs
        rules = self.rules
        shadow = self.shadow
        reports = self.result.reports
        reports_extend = reports.extend
        scratch = self._scratch
        fill = cols.fill
        handlers = _HANDLER_LIST
        n_handlers = len(handlers)
        counts = [0] * n_handlers if metrics is not None else None
        # The inlined paths below encode X86Rules semantics; any other
        # model replays through its own apply_op via scratch dispatch.
        fast = type(rules) is X86Rules
        apply_flush = rules.apply_flush_fused if fast else None
        pm_assign = shadow.pm.assign
        pm_overlaps = shadow.pm.overlaps
        result = self.result
        segment_state = SegmentState
        write_max = WRITE_MAX
        flush_max = FLUSH_MAX
        sfence = OP_SFENCE
        check_persist = OP_CHECK_PERSIST
        site_at = cols.site_at
        # Array shadow: per-epoch ops and checks are collected into
        # vectors and answered through the batched store API.  The run
        # finder reuses the silent path's C-speed translate table.
        array = fast and type(shadow.pm) is ArrayIntervalMap
        run_ends = bytes(ops).translate(_RUN_END_TABLE) if array else b""
        check_pass_many = rules.check_persist_pass_many if array else None
        apply_write_run = rules.apply_write_run if array else None
        slow = self.tx_check_active or bool(self.excluded)
        while i < end:
            b = ops[i]
            if fast and not slow and b <= flush_max:
                if b <= write_max:
                    if array:
                        # Whole fence-delimited write run in one sorted
                        # sweep + single splice; a run holding a
                        # non-positive size replays sequentially so the
                        # structural error fires at the same event with
                        # the same partial shadow state.
                        j = run_ends.find(b"\x01", i + 1, end)
                        if j == -1:
                            j = end
                        if j - i >= 2 and _sizes_positive(sizes, i, j):
                            apply_write_run(
                                shadow, ops, addrs, sizes, site_at, i, j
                            )
                            if counts is not None:
                                for v in range(1, write_max + 1):
                                    counts[v] += ops.count(v, i, j)
                            i = j
                            continue
                    # Inline write: the object engine reaches the same
                    # assign through three calls (handler, apply_op,
                    # two enum identity checks); here it is direct.
                    addr = addrs[i]
                    size = sizes[i]
                    ref = site_idx[i]
                    site = site_table[ref] if ref >= 0 else None
                    ts = shadow.timestamp
                    if (
                        b == 1
                        and i + 1 < end
                        and write_max < ops[i + 1] <= flush_max
                        and addrs[i + 1] == addr
                        and sizes[i + 1] == size
                        and size > 0
                    ):
                        # Fused write+writeback over the exact same
                        # range (the canonical write/clwb idiom): after
                        # the write's assign the flush range has no
                        # gaps and its only overlap is the fresh
                        # unflushed segment, so the flush can emit no
                        # diagnostics, and assigning the post-flush
                        # state directly equals assign + with_flush.
                        ref = site_idx[i + 1]
                        pm_assign(
                            addr,
                            addr + size,
                            segment_state(
                                ts,
                                ts,
                                site,
                                site_table[ref] if ref >= 0 else None,
                            ),
                        )
                        if counts is not None:
                            counts[b] += 1
                            counts[ops[i + 1]] += 1
                        i += 2
                        continue
                    pm_assign(
                        addr,
                        addr + size,
                        segment_state(ts, None, site)
                        if b == 1
                        else segment_state(ts, ts, site, site),
                    )
                    if counts is not None:
                        counts[b] += 1
                    i += 1
                    continue
                # Inline flush: _apply_flush only reads addr/end/site/
                # seq off the event, so fill exactly those fields.
                scratch.addr = addrs[i]
                scratch.size = sizes[i]
                ref = site_idx[i]
                scratch.site = site_table[ref] if ref >= 0 else None
                scratch.seq = seqs[i] if seqs is not None else i
                flush_reports = apply_flush(shadow, scratch)
                if flush_reports:
                    reports_extend(flush_reports)
                if counts is not None:
                    counts[b] += 1
                i += 1
                continue
            if fast and not slow and b == sfence:
                shadow.advance()
                if counts is not None:
                    counts[b] += 1
                i += 1
                continue
            if array and not slow and b == check_persist and sizes[i] > 0:
                # Batched isPersist: one searchsorted pass over the
                # columns answers every query in a run of consecutive
                # checks (checks never mutate the shadow, so batching
                # the lookups cannot reorder anything observable).
                # Maybe-failing queries fall through, in order, to the
                # full handler for byte-identical reports.
                j = i + 1
                while j < end and ops[j] == check_persist and sizes[j] > 0:
                    j += 1
                passes = check_pass_many(
                    shadow,
                    [(addrs[k], addrs[k] + sizes[k]) for k in range(i, j)],
                )
                handler = handlers[b]
                for off in range(j - i):
                    if passes[off]:
                        result.checkers_evaluated += 1
                    else:
                        handler(self, fill(i + off, scratch))
                if counts is not None:
                    counts[b] += j - i
                i = j
                continue
            if fast and not slow and b == check_persist and sizes[i] > 0:
                # Inline isPersist *pass* path: under x86 a subrange
                # passes iff it was flushed in an epoch the timestamp
                # has since passed, so a raw scan of segment states
                # decides the common all-persistent case without the
                # Interval/Report machinery.  Any segment that would
                # fail (or a zero-size range) falls through to the
                # full handler for identical reports.
                addr = addrs[i]
                now = shadow.timestamp
                for _lo, _hi, state in pm_overlaps(
                    addr, addr + sizes[i], False
                ):
                    fe = state.flush_epoch
                    if fe is None or fe >= now:
                        break
                else:
                    result.checkers_evaluated += 1
                    if counts is not None:
                        counts[b] += 1
                    i += 1
                    continue
            handler = handlers[b] if b < n_handlers else None
            if handler is None:
                raise MalformedTrace(
                    f"unknown trace op {OPS_BY_VALUE[b] if b < n_handlers else b!r}"
                )
            handler(self, fill(i, scratch))
            if counts is not None:
                counts[b] += 1
            slow = self.tx_check_active or bool(self.excluded)
            i += 1
        if counts is not None:
            counter = metrics.counter
            for value, count in enumerate(counts):
                if count:
                    counter(f"engine.op.{OPS_BY_VALUE[value].name}").inc(count)

    #: Minimum write-run length for the sort-and-sweep bulk path.  The
    #: sweep only pays when runs carry dead writes (it replaces N map
    #: assigns with gap queries + surviving-piece assigns); below this
    #: it costs more than assigning directly, and post-coalescing runs
    #: carry no dead writes at all — so the sweep is reserved for the
    #: silent prefix replay, where coalescing has not run.
    SWEEP_MIN_RUN = 8

    def _bulk_writes(self, i: int, j: int) -> None:
        """Apply the write run ``[i, j)``, long runs via the rules-level
        epoch kernel.

        Short runs assign sequentially.  Long runs with all-positive
        sizes go through :meth:`~repro.core.rules.x86.X86Rules
        .apply_write_run`, which produces the exact shadow segmentation
        of sequential per-write ``assign`` calls (disjoint runs assign
        directly; overlapping runs use one reverse coverage sweep so
        dead writes never touch the shadow map).
        """
        cols = self.cols
        ops = cols.ops
        addrs = cols.addrs
        sizes = cols.sizes
        shadow = self.shadow
        site_at = cols.site_at
        # The array store splices whole runs profitably from length 2
        # (disjoint runs merge in one pass); the object map only wins
        # once runs are long enough to carry dead writes.
        min_run = (
            2 if type(shadow.pm) is ArrayIntervalMap else self.SWEEP_MIN_RUN
        )
        if j - i >= min_run and _sizes_positive(sizes, i, j):
            self.rules.apply_write_run(
                shadow, ops, addrs, sizes, site_at, i, j
            )
            return
        # Sequential path: short runs, and runs holding a non-positive
        # size (the structural-invalid ValueError must fire at the same
        # event with the same partial shadow state as the object
        # engine).
        pm_assign = shadow.pm.assign
        ts = shadow.timestamp
        write = OP_WRITE
        for k in range(i, j):
            addr = addrs[k]
            site = site_at(k)
            state = (
                SegmentState(ts, None, site)
                if ops[k] == write
                else SegmentState(ts, ts, site, site)
            )
            pm_assign(addr, addr + sizes[k], state)

    # ------------------------------------------------------------------
    # Silent prefix replay (epoch shards)
    # ------------------------------------------------------------------
    def _fast_forward(self, end: int) -> None:
        """Reconstruct shadow/transaction/scope state over ``[0, end)``
        without evaluating checkers or emitting reports.

        State effects are identical to a full replay of the prefix:
        writes, flushes and fences go through
        ``PersistencyRules.apply_op_silent`` (same shadow mutations,
        report scans skipped), transaction and scope bookkeeping runs
        normally, and checker records are skipped outright — every
        ``TX_CHECKER`` scope opened in the prefix also closes there
        (shard cuts are only taken outside open scopes), so the
        ``modified`` set it would have tracked is dead state.
        """
        cols = self.cols
        ops = cols.ops
        addrs = cols.addrs
        sizes = cols.sizes
        rules = self.rules
        shadow = self.shadow
        scratch = self._scratch
        fill = cols.fill
        silent = rules.apply_op_silent
        excluded = self.excluded
        site_at = cols.site_at
        fast = type(rules) is X86Rules
        # One C-speed translate marks run-ending (non-write) opcodes so
        # the write-run finder below is a bytes.find hop instead of a
        # per-element Python comparison loop.
        run_ends = bytes(ops).translate(_RUN_END_TABLE) if fast else b""
        i = 0
        while i < end:
            b = ops[i]
            if b <= WRITE_MAX:
                if not excluded:
                    if fast:
                        j = run_ends.find(b"\x01", i + 1, end)
                        if j == -1:
                            j = end
                        size = sizes[i]
                        if (
                            j == i + 1
                            and b == OP_WRITE
                            and j < end
                            and WRITE_MAX < ops[j] <= FLUSH_MAX
                            and addrs[j] == addrs[i]
                            and sizes[j] == size
                            and size > 0
                        ):
                            # Same fused write+writeback as the checked
                            # loop (silent replay emits nothing, so
                            # only the final state must match — and it
                            # does, by the same argument).
                            addr = addrs[i]
                            ts = shadow.timestamp
                            shadow.pm.assign(
                                addr,
                                addr + size,
                                SegmentState(
                                    ts, ts, site_at(i), site_at(j)
                                ),
                            )
                            i = j + 1
                            continue
                        self._bulk_writes(i, j)
                        i = j
                        continue
                    silent(shadow, fill(i, scratch))
                else:
                    for lo, hi in excluded.gaps(addrs[i], addrs[i] + sizes[i]):
                        silent(shadow, self._sub_scratch(i, lo, hi))
                i += 1
            elif b <= FLUSH_MAX:
                if not excluded:
                    if fast:
                        # Inline the silent writeback: first flush
                        # wins, no scratch fill or enum dispatch.  The
                        # array store maps codes directly (no state
                        # decode/rebuild).
                        now = shadow.timestamp
                        site = site_at(i)
                        pm = shadow.pm
                        if type(pm) is ArrayIntervalMap:
                            pm.update_codes(
                                addrs[i],
                                addrs[i] + sizes[i],
                                pm.codec.flush_map(now, site),
                            )
                        else:
                            pm.update(
                                addrs[i],
                                addrs[i] + sizes[i],
                                lambda lo, hi, state: state
                                if state.flush_epoch is not None
                                else state.with_flush(now, site),
                            )
                    else:
                        silent(shadow, fill(i, scratch))
                else:
                    for lo, hi in excluded.gaps(addrs[i], addrs[i] + sizes[i]):
                        silent(shadow, self._sub_scratch(i, lo, hi))
                i += 1
            elif b <= FENCE_MAX:
                if fast and b == OP_SFENCE:
                    shadow.advance()
                else:
                    silent(shadow, fill(i, scratch))
                i += 1
            elif b == OP_TX_BEGIN:
                self.tx_depth += 1
                if self.tx_depth == 1:
                    self.log_tree.reset()
                i += 1
            elif b == OP_TX_END:
                if self.tx_depth == 0:
                    raise MalformedTrace(
                        f"TX_END without TX_BEGIN at {site_at(i)}"
                    )
                self.tx_depth -= 1
                i += 1
            elif b == OP_TX_ADD:
                self.log_tree.add(addrs[i], addrs[i] + sizes[i], site_at(i))
                i += 1
            elif b == OP_EXCLUDE:
                excluded.assign(addrs[i], addrs[i] + sizes[i], True)
                i += 1
            elif b == OP_INCLUDE:
                excluded.erase(addrs[i], addrs[i] + sizes[i])
                i += 1
            else:
                # Checker records (CHECK_PERSIST/CHECK_ORDER and the
                # TX_CHECKER scope markers): pure validation, no state
                # a later epoch can observe.
                i += 1

    def _sub_scratch(self, i: int, lo: int, hi: int) -> Event:
        scratch = self.cols.fill(i, self._scratch)
        scratch.addr = lo
        scratch.size = hi - lo
        return scratch


